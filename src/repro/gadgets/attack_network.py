"""The partially-secure-path attack network (Appendix B, Figure 15).

Topology: victim prefix originated by ``v``; honest route
``p <- r <- s <- v``; attacker ``m`` (customer of secure AS ``q``)
falsely announces the direct path ``(m, v)``.  Only ``p`` and ``q``
run S*BGP.

``p`` then faces two equal-length candidates:

- the *true but insecure* route ``(p, r, s, v)``;
- the *false but partially secure* route ``(p, q, m, v)`` — ``q``'s
  signature is genuine, ``m``'s and ``v``'s are missing.

If ``p`` follows the paper's rule (only fully-secure paths get
preference) its ordinary tie-break keeps the honest route.  If ``p``
prefers partially-secure paths, the attacker wins — a new attack vector
that does not exist without S*BGP, which is exactly why the paper
forbids that ranking (§2.2.2).
"""

from __future__ import annotations

import dataclasses

from repro.protocol.attacks import forge_path_announcement
from repro.protocol.router import ProtocolNetwork, SecurityMode
from repro.protocol.rpki import RPKI, Prefix
from repro.protocol.sbgp import sign_hop
from repro.routing.policy import tie_hash
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class AttackNetwork:
    """The Figure-15 cast, plus the network ready to converge."""

    graph: ASGraph
    p: int
    q: int
    r: int
    s: int
    v: int
    m: int
    prefix: Prefix

    def build_protocol_network(self, p_prefers_partial: bool) -> ProtocolNetwork:
        """Assemble the protocol network with the attack injected."""
        rpki = RPKI(seed=b"fig15")
        # "suppose that only ASes p and q are secure" (App. B) — the
        # victim v does not sign, so the honest path carries no
        # attestations at all and ranks as plain insecure.
        modes = {self.p: SecurityMode.FULL, self.q: SecurityMode.FULL}
        prefer = {self.p} if p_prefers_partial else set()
        net = ProtocolNetwork(self.graph, rpki, modes, prefer_partially_secure=prefer)
        net.originate_prefix(self.v, self.prefix)
        forged = forge_path_announcement(self.m, (self.m, self.v), self.prefix)
        # The attacker signs its own hop toward q — the one genuine
        # signature that makes the false path "partially secure".
        rpki.register_as(self.m)
        forged = dataclasses.replace(
            forged,
            attestations=(
                sign_hop(rpki, self.m, self.prefix, (self.m, self.v), next_as=self.q),
            ),
        )
        net.inject(self.m, forged)
        return net


def build_attack_network() -> AttackNetwork:
    """Construct Figure 15 with the tie-break favouring the honest route.

    The paper assumes "p's tiebreak algorithm prefers paths through r
    over paths through q"; AS insertion order is chosen so the hash
    tie-break agrees.
    """
    # candidate insertion orders for (p, q, r, s, v, m); indices follow
    # insertion, so try until H(p, r) < H(p, q).
    orders = [
        ("p", "q", "r", "s", "v", "m"),
        ("p", "r", "q", "s", "v", "m"),
        ("q", "p", "r", "s", "v", "m"),
        ("r", "p", "q", "s", "v", "m"),
        ("s", "p", "q", "r", "v", "m"),
        ("p", "q", "s", "r", "v", "m"),
    ]
    for order in orders:
        index = {name: i for i, name in enumerate(order)}
        if tie_hash(index["p"], index["r"]) < tie_hash(index["p"], index["q"]):
            break
    else:  # pragma: no cover - one of the orders satisfies the bit
        raise RuntimeError("no insertion order favours the honest route")

    asn = {name: 64500 + index[name] for name in index}
    graph = ASGraph()
    for name in order:
        graph.add_as(asn[name])

    # honest chain: v <- s <- r <- p  (each left one is the customer)
    graph.add_customer_provider(provider=asn["s"], customer=asn["v"])
    graph.add_customer_provider(provider=asn["r"], customer=asn["s"])
    graph.add_customer_provider(provider=asn["p"], customer=asn["r"])
    # attack chain: m <- q <- p ; m pretends a direct link m-v
    graph.add_customer_provider(provider=asn["q"], customer=asn["m"])
    graph.add_customer_provider(provider=asn["p"], customer=asn["q"])
    graph.validate()

    return AttackNetwork(
        graph=graph,
        p=asn["p"],
        q=asn["q"],
        r=asn["r"],
        s=asn["s"],
        v=asn["v"],
        m=asn["m"],
        prefix=Prefix("198.51.100.0", 24),
    )
