"""DIAMOND census (Figure 2 / Table 1).

A DIAMOND is the competitive structure that powers the whole proposal:
a traffic source (e.g. a Tier-1 early adopter) with *equally good*
routes to a multihomed stub through two or more competing ISPs.  When
one competitor deploys S*BGP (securing the stub via simplex), the
secure source's SecP tie-break moves its traffic to the secure route —
and the other competitor must deploy to win it back.

Table 1 of the paper counts, per early adopter, how many such
structures exist in the AS graph.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.routing.cache import RoutingCache
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class DiamondCensus:
    """Diamond counts per early adopter (AS numbers as keys)."""

    contested_stubs: dict[int, int]   # early adopter -> #stub dests with >=2 equal routes
    competitor_pairs: dict[int, int]  # early adopter -> #competing ISP pairs

    @property
    def total_contested(self) -> int:
        return sum(self.contested_stubs.values())

    @property
    def total_pairs(self) -> int:
        return sum(self.competitor_pairs.values())


def diamond_census(
    graph: ASGraph,
    early_adopter_asns: Iterable[int],
    cache: RoutingCache | None = None,
    destinations: Iterable[int] | None = None,
) -> DiamondCensus:
    """Count diamonds between each early adopter and stub destinations.

    ``destinations`` restricts the stub destinations examined (dense
    indices); by default all stubs are scanned.
    """
    cache = cache or RoutingCache(graph)
    roles = graph.roles
    if destinations is None:
        stub_dests = graph.stub_indices
    else:
        stub_dests = [d for d in destinations if roles[d] == int(ASRole.STUB)]

    adopters = [graph.index(asn) for asn in early_adopter_asns]
    contested = {graph.asn(a): 0 for a in adopters}
    pairs = {graph.asn(a): 0 for a in adopters}

    for dest in stub_dests:
        dr = cache.dest_routing(dest)
        for a in adopters:
            if a == dest:
                continue
            size = len(dr.tiebreak_set(a))
            if size >= 2:
                asn = graph.asn(a)
                contested[asn] += 1
                pairs[asn] += size * (size - 1) // 2
    return DiamondCensus(contested_stubs=contested, competitor_pairs=pairs)
