"""Numba backend: ``@njit``-compiled level loops over the flat pools.

Importing this module is the load step: it JIT-compiles the loop
bodies from :mod:`repro.routing.backends._loops` and warms them on
tiny, dtype-exact inputs so the first *real* kernel call never pays
compilation latency.  ``cache=True`` persists the machine code next to
the package, so warm processes (and the process-pool workers, which
import this module independently) hit the on-disk cache instead of
recompiling — the registry's ``routing.backend.compile_seconds``
histogram makes the difference visible.

Numba is an optional dependency (the ``compiled`` extra); when it is
missing the import below raises ``ImportError`` and the registry
degrades the caller to numpy through the ``compiled_to_numpy`` ladder
rung.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # ImportError here == backend unavailable

from repro.routing.backends import _loops

_jit = njit(cache=True, fastmath=False, nogil=True)

trees_level = _jit(_loops.trees_level)
weights_level = _jit(_loops.weights_level)
# fixpoint_sweep calls _edge_key through _loops' module globals (and
# attack_sweep calls _attack_edge_key the same way), so the helpers must
# be rebound to their Dispatchers *in that namespace* before the sweeps
# are compiled (a Dispatcher is still a callable, so the pure "python"
# backend keeps working — marginally faster, identical bits).
if not hasattr(_loops._edge_key, "py_func"):
    _loops._edge_key = _jit(_loops._edge_key)
if not hasattr(_loops._attack_edge_key, "py_func"):
    _loops._attack_edge_key = _jit(_loops._attack_edge_key)
fixpoint_sweep = _jit(_loops.fixpoint_sweep)
attack_sweep = _jit(_loops.attack_sweep)


def _warm_up() -> None:
    """Compile all four kernels on minimal dtype-exact inputs."""
    n = 2
    nodes = np.zeros(1, dtype=np.int32)
    sizes = np.ones(1, dtype=np.int64)
    starts = np.zeros(1, dtype=np.int64)
    row_of_edge = np.zeros(1, dtype=np.int64)
    cands = np.ones(1, dtype=np.int32)
    keys = np.zeros(1, dtype=np.uint64)
    node_b = np.zeros(1, dtype=np.int32)
    node_secure = np.zeros(n, dtype=np.bool_)
    breaks_ties = np.zeros(n, dtype=np.bool_)
    choice = np.full((1, n), -1, dtype=np.int32)
    secure = np.zeros((1, n), dtype=np.bool_)
    any_secure = np.zeros((1, n), dtype=np.bool_)
    trees_level(nodes, sizes, starts, row_of_edge, cands, keys, node_b,
                node_secure, breaks_ties, choice, secure, any_secure)

    w = np.zeros((1, n), dtype=np.float64)
    node_weights = np.zeros(n, dtype=np.float64)
    weights_level(nodes, node_b, choice, node_weights, w)

    u = np.zeros(1, dtype=np.int32)
    v = np.ones(1, dtype=np.int32)
    route_cls = np.full(1, 2, dtype=np.int8)
    seg_starts = np.zeros(1, dtype=np.int64)
    seg_sizes = np.ones(1, dtype=np.int64)
    seg_u = np.zeros(1, dtype=np.int32)
    tie_key = np.zeros(1, dtype=np.uint64)
    lp_field = np.zeros(1, dtype=np.uint32)
    is_provider_edge = np.zeros(1, dtype=np.bool_)
    rank_codes = np.array([0, 1, 2], dtype=np.int64)
    rank_widths = np.array([2, 21, 1], dtype=np.uint32)
    cls = np.full((1, n), -1, dtype=np.int8)
    length = np.full((1, n), -1, dtype=np.int32)
    sec = np.zeros((1, n), dtype=np.bool_)
    applies_edge = np.zeros(1, dtype=np.bool_)
    new_cls = np.full((1, n), -1, dtype=np.int8)
    new_len = np.full((1, n), -1, dtype=np.int32)
    new_sec = np.zeros((1, n), dtype=np.bool_)
    tied = np.zeros((1, 1), dtype=np.bool_)
    fixpoint_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                   lp_field, is_provider_edge, rank_codes, rank_widths,
                   cls, length, sec, applies_edge, node_secure,
                   new_cls, new_len, new_sec, tied)

    attacker = np.ones(1, dtype=np.int64)
    gullible_edge = np.zeros(1, dtype=np.bool_)
    validators = np.zeros(n, dtype=np.bool_)
    att = np.zeros((1, n), dtype=np.bool_)
    new_att = np.zeros((1, n), dtype=np.bool_)
    attack_sweep(u, v, route_cls, seg_starts, seg_sizes, seg_u, tie_key,
                 lp_field, is_provider_edge, rank_codes, rank_widths,
                 attacker, gullible_edge, validators, False, False,
                 cls, length, sec, att, applies_edge, node_secure,
                 new_cls, new_len, new_sec, new_att)


_warm_up()
