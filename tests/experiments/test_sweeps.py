"""Tests for the theta sweeps (Figures 8, 9, 11, 14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sweeps import (
    cells_to_rows,
    run_sweep,
    stub_tiebreak_comparison,
)


@pytest.fixture(scope="module")
def cells(medium_env):
    sets = {
        "none": [],
        "top-5": medium_env.adopter_sets()["top-5"],
        "cps+top-5": medium_env.adopter_sets()["cps+top-5"],
    }
    return run_sweep(
        medium_env,
        thetas=(0.0, 0.05, 0.30),
        adopter_sets=sets,
        collect_projection_accuracy=True,
    )


class TestFig8Shape:
    def test_grid_complete(self, cells):
        assert len(cells) == 9

    def test_adoption_decreases_with_theta(self, cells):
        """Fig. 8: higher deployment cost, lower adoption."""
        for name in ("top-5", "cps+top-5"):
            series = [c.fraction_secure_ases for c in cells if c.adopters == name]
            assert series[0] >= series[-1]

    def test_low_theta_mass_adoption(self, cells):
        best = max(
            c.fraction_secure_ases
            for c in cells
            if c.theta <= 0.05 and c.adopters != "none"
        )
        assert best > 0.5  # paper: 85%

    def test_high_theta_collapse_for_isps(self, cells):
        """Fig. 8b / §6.5: at high theta, few ISPs deploy by market."""
        for c in cells:
            if c.theta == 0.30 and c.adopters == "top-5":
                assert c.fraction_isps_by_market < c.fraction_secure_ases

    def test_market_fraction_bounded(self, cells):
        for c in cells:
            assert 0 <= c.fraction_isps_by_market <= c.fraction_secure_isps + 1e-9


class TestFig9:
    def test_secure_paths_below_f_squared(self, cells):
        for c in cells:
            assert c.fraction_secure_paths <= c.f_squared + 1e-9

    def test_secure_paths_near_f_squared_when_large(self, cells):
        """Fig. 9: the measured curve hugs f^2 (within ~a few %)."""
        for c in cells:
            if c.fraction_secure_ases > 0.6:
                assert c.fraction_secure_paths > 0.6 * c.f_squared


class TestFig14:
    def test_projection_ratios_collected(self, cells):
        ratios = [r for c in cells for r in c.projection_ratios]
        assert ratios
        assert np.median(ratios) == pytest.approx(1.0, abs=0.2)


class TestFig11:
    def test_stub_tiebreak_insensitivity(self, medium_env):
        """§6.7: outcomes barely move when stubs ignore security."""
        sets = {"cps+top-5": medium_env.adopter_sets()["cps+top-5"]}
        comparison = stub_tiebreak_comparison(
            medium_env, thetas=(0.05,), adopter_sets=sets
        )
        with_stub = comparison[True][0].fraction_secure_ases
        without = comparison[False][0].fraction_secure_ases
        assert abs(with_stub - without) < 0.15


def test_cells_to_rows(cells):
    rows = cells_to_rows(cells)
    assert len(rows) == len(cells)
    assert len(rows[0]) == 8
