"""Exceptions raised by the topology subpackage."""

from __future__ import annotations


class TopologyError(Exception):
    """Base class for all topology errors."""


class UnknownASError(TopologyError, KeyError):
    """An operation referenced an AS number that is not in the graph."""

    def __init__(self, asn: int):
        super().__init__(f"AS {asn} is not in the graph")
        self.asn = asn


class DuplicateASError(TopologyError, ValueError):
    """An AS number was added to the graph twice."""

    def __init__(self, asn: int):
        super().__init__(f"AS {asn} is already in the graph")
        self.asn = asn


class DuplicateEdgeError(TopologyError, ValueError):
    """An edge between two ASes was declared twice."""

    def __init__(self, a: int, b: int):
        super().__init__(f"edge between AS {a} and AS {b} already exists")
        self.endpoints = (a, b)


class RelationshipCycleError(TopologyError, ValueError):
    """The customer-provider hierarchy contains a cycle (violates GR1)."""

    def __init__(self, cycle: list[int]):
        path = " -> ".join(str(asn) for asn in cycle)
        super().__init__(f"customer-provider cycle: {path}")
        self.cycle = cycle


class GraphFormatError(TopologyError, ValueError):
    """A serialized graph file could not be parsed."""
