"""Conclusion / §8.2: S*BGP deployment moves real traffic.

"With security impacting route selection, ISPs will need tools to
forecast how S*BGP deployment will impact traffic patterns ... so they
can provision their networks appropriately."  The bench measures the
aggregate re-provisioning signal: what share of all carried traffic
changes links between the insecure starting state and the case-study
final state, and how many links gain/lose traffic entirely.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.flows import deployment_traffic_shift


def test_traffic_shift_across_cascade(benchmark, env, capsys):
    def measure():
        report = case_study_report(env)
        deriver = StateDeriver(env.graph, stub_breaks_ties=True,
                               compiled=env.cache.compiled)
        empty = DeploymentState(frozenset(), frozenset())
        return deployment_traffic_shift(
            env.cache, deriver, empty, report.result.final_state
        )

    shift = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Traffic shift: insecure start -> case-study final state")
        print(f"  links carrying traffic: {shift.num_links_before} -> "
              f"{shift.num_links_after}")
        print(f"  links with changed load: {shift.links_changed} "
              f"(new: {shift.new_links}, dropped: {shift.dropped_links})")
        print(f"  traffic moved onto different links: "
              f"{shift.moved_fraction:.1%} of all carried volume")
        print("  (the provisioning signal the paper's conclusion asks "
              "operators to forecast)")
    assert shift.moved_load > 0
    assert shift.moved_fraction < 0.8  # security is a tie-break, not a rewrite
