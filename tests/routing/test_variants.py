"""Tests for the §8.3 routing-policy variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.cache import RoutingCache
from repro.routing.fast_tree import compute_tree, subtree_weights
from repro.routing.policy import RouteClass, available_policies, get_policy
from repro.routing.policy import compute_dest_routing_sp_first, restrict_to_primary
from repro.topology.graph import ASGraph


def valley_graph() -> ASGraph:
    """1 reaches 3 via a 3-hop customer chain or a 2-hop peer route."""
    g = ASGraph()
    for asn in (1, 2, 5, 3, 4):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=2, customer=5)
    g.add_customer_provider(provider=5, customer=3)
    g.add_customer_provider(provider=4, customer=3)
    g.add_peering(1, 4)
    return g


class TestSpFirst:
    def test_sp_beats_lp(self):
        """The defining difference: a shorter peer route now beats a
        longer customer route."""
        g = valley_graph()
        dr = compute_dest_routing_sp_first(g, g.index(3))
        i1 = g.index(1)
        assert dr.lengths[i1] == 2
        assert dr.cls[i1] == int(RouteClass.PEER)
        assert list(dr.tiebreak_set(i1)) == [g.index(4)]

    def test_gao_rexford_prefers_customer(self):
        """Sanity: the default policy picks the longer customer chain."""
        from repro.routing.tree import compute_dest_routing

        g = valley_graph()
        dr = compute_dest_routing(g, g.index(3))
        i1 = g.index(1)
        assert dr.cls[i1] == int(RouteClass.CUSTOMER)
        assert dr.lengths[i1] == 3

    def test_lp_still_second_criterion(self):
        """Equal-length customer and peer candidates: customer wins."""
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)
        g.add_customer_provider(provider=4, customer=3)
        g.add_peering(1, 4)
        dr = compute_dest_routing_sp_first(g, g.index(3))
        i1 = g.index(1)
        assert dr.cls[i1] == int(RouteClass.CUSTOMER)
        assert list(dr.tiebreak_set(i1)) == [g.index(2)]

    def test_gr2_still_enforced(self):
        """A peer route is still not exportable over another peering."""
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_peering(1, 2)
        g.add_peering(2, 3)
        dr = compute_dest_routing_sp_first(g, g.index(3))
        assert dr.lengths[g.index(1)] == -1

    def test_paths_never_longer_than_gao_rexford(self, small_graph):
        from repro.routing.tree import compute_dest_routing

        for dest in range(0, small_graph.n, 23):
            base = compute_dest_routing(small_graph, dest)
            sp = compute_dest_routing_sp_first(small_graph, dest)
            reachable = base.lengths >= 0
            assert (sp.lengths[reachable] <= base.lengths[reachable]).all()

    def test_game_engine_runs_on_variant(self, small_graph):
        secure = np.zeros(small_graph.n, dtype=bool)
        secure[::4] = True
        dr = compute_dest_routing_sp_first(small_graph, 3)
        tree = compute_tree(dr, secure, secure)
        w = subtree_weights(dr, tree, small_graph.weights)
        assert w.sum() >= 0

    def test_policy_registry(self, small_graph):
        cache = RoutingCache(small_graph, policy="sp-first")
        assert cache.policy_name == "sp_first"
        assert cache.dest_routing(0).dest == 0
        with pytest.raises(ValueError):
            RoutingCache(small_graph, policy="nonsense")
        assert set(available_policies()) >= {
            "security_3rd", "security_2nd", "security_1st",
            "sp_first", "sticky_primaries",
        }
        # aliases of the pre-registry POLICIES dict keep resolving
        assert get_policy("gao-rexford").name == "security_3rd"
        assert get_policy("sp-first").name == "sp_first"


class TestStickyPrimaries:
    def test_sticky_nodes_get_singletons(self, small_graph, small_cache):
        dr = small_cache.dest_routing(7)
        sticky = np.ones(small_graph.n, dtype=bool)
        restricted = restrict_to_primary(dr, sticky)
        sizes = restricted.tiebreak_sizes()
        assert (sizes[1:] == 1).all()

    def test_primary_matches_insecure_choice(self, small_graph, small_cache):
        """The surviving candidate is the security-free hash choice, so
        insecure routing is unchanged."""
        dr = small_cache.dest_routing(11)
        none = np.zeros(small_graph.n, dtype=bool)
        before = compute_tree(dr, none, none)
        sticky = np.ones(small_graph.n, dtype=bool)
        after = compute_tree(restrict_to_primary(dr, sticky), none, none)
        assert (before.choice == after.choice).all()

    def test_non_sticky_untouched(self, small_graph, small_cache):
        dr = small_cache.dest_routing(5)
        sticky = np.zeros(small_graph.n, dtype=bool)
        restricted = restrict_to_primary(dr, sticky)
        assert (restricted.indptr == dr.indptr).all()
        assert (restricted.cands == dr.cands).all()

    def test_cache_transform_hook(self, small_graph):
        sticky = np.ones(small_graph.n, dtype=bool)
        cache = RoutingCache(
            small_graph, transform=lambda dr: restrict_to_primary(dr, sticky)
        )
        sizes = cache.dest_routing(9).tiebreak_sizes()
        assert (sizes[1:] == 1).all()
