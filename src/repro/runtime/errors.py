"""Typed errors for the resilience layer.

Every recoverable failure in persistence, journaling, and the parallel
engine surfaces as one of these instead of a raw ``json.JSONDecodeError``
or a dead process pool, so callers can distinguish "the file is damaged"
from "the file is from a different run" from "this one input is bad".
"""

from __future__ import annotations


class PersistenceError(Exception):
    """Base class for result/journal persistence failures."""


class CorruptFileError(PersistenceError):
    """A file exists but its bytes are damaged.

    Raised for truncated JSON, undecodable text, and checksum
    mismatches.  The original cause (if any) is chained as
    ``__cause__``.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


class SchemaError(PersistenceError, ValueError):
    """A file parsed cleanly but does not match the expected format.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old untyped format check keep working.
    """


class JournalError(PersistenceError):
    """Base class for run-journal failures."""


class JournalCorruptError(JournalError):
    """A journal line (other than a torn final line) failed validation."""

    def __init__(self, path, lineno: int, reason: str):
        self.path = str(path)
        self.lineno = lineno
        self.reason = reason
        super().__init__(f"{self.path}:{lineno}: {reason}")


class JournalMismatchError(JournalError):
    """An existing journal belongs to a different run configuration.

    Resuming into a journal whose header metadata differs from the
    current run would silently mix incompatible cells; this error names
    the first differing key instead.
    """


class JournalLockedError(JournalError):
    """Another writer holds the journal's advisory lock.

    Appends take a best-effort ``flock`` so two daemon workers (or two
    daemon *processes* sharing a store directory) can never interleave
    half-lines into one journal.  Contention beyond the short retry
    window surfaces as this error instead of silent corruption; the
    caller decides whether to retry, requeue, or fail the work unit.
    """

    def __init__(self, path: object, waited_seconds: float):
        self.path = str(path)
        self.waited_seconds = waited_seconds
        super().__init__(
            f"{self.path}: journal is locked by another writer (gave up "
            f"after {waited_seconds:g}s); two runs may be sharing one "
            "journal path"
        )


class DeadlineExceeded(RuntimeError):
    """A cooperative wall-clock budget ran out (see ``runtime.guard``).

    Raised at a *checkpoint* — a sweep-cell, simulation-round, or
    map-loop boundary — never mid-computation, so everything finished
    before the raise has already been journaled and a ``--resume`` run
    picks up exactly where the budget ended.  ``where`` names the
    checkpoint; ``budget_seconds`` is the budget that expired.
    """

    def __init__(self, where: str, budget_seconds: float):
        self.where = where
        self.budget_seconds = budget_seconds
        super().__init__(
            f"deadline of {budget_seconds:g}s exceeded at {where}; "
            "completed work was journaled (rerun with --resume to continue)"
        )


class MemoryBudgetExceeded(RuntimeError):
    """An allocation was refused because it cannot fit the memory budget.

    Only raised by :meth:`~repro.runtime.guard.MemoryBudget.require` —
    the degradation ladder prefers shrinking the work (chunked batches,
    fewer workers, lazy warm) over refusing it, so this surfaces only
    when even the smallest possible unit exceeds the budget.
    """

    def __init__(self, what: str, needed_bytes: int, limit_bytes: int):
        self.what = what
        self.needed_bytes = needed_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"{what} needs ~{needed_bytes / 2**20:.1f} MiB but the memory "
            f"budget is {limit_bytes / 2**20:.1f} MiB; raise --memory-budget "
            "or shrink the run"
        )


class EngineShutdownError(RuntimeError):
    """A parallel map was stopped by a shutdown request (SIGTERM/SIGINT).

    Raised by :meth:`~repro.parallel.engine.ProcessEngine.map` after the
    engine stopped dispatching new partitions, drained (or terminated)
    the in-flight ones, and cleaned up worker processes — so a daemon
    kill never leaks children or shared-memory segments.  Work mapped so
    far is abandoned; journal-backed callers resume it on restart.
    """

    def __init__(self, pending_items: int):
        self.pending_items = pending_items
        super().__init__(
            f"parallel map interrupted by shutdown request with "
            f"{pending_items} item(s) unfinished; journaled work resumes "
            "on restart"
        )


class ItemFailedError(Exception):
    """One mapped item kept failing even in the serial fallback.

    The parallel engine retries a failing partition at finer and finer
    granularity; once a single item has exhausted its retries it is run
    in-process, and if it *still* raises, that exception is chained here
    with the item identified — one poisoned input is reported, not
    silently dropped or blamed on the pool.
    """

    def __init__(self, index: int, item: object, cause: BaseException | str):
        self.index = index
        self.item = item
        detail = cause if isinstance(cause, str) else f"{type(cause).__name__}: {cause}"
        super().__init__(f"item {index} ({item!r}) failed after retries: {detail}")
