"""Differential tests pinning the policy layer to the reference.

Three tiers of guarantee, by how much convergence theory gives us:

- ``security_3rd`` (the default) is a *pure refactor*: structures built
  through :class:`~repro.routing.policy.RoutingPolicy` must be
  bit-identical to the pre-refactor scalar builder, and the scalar,
  vectorised and batched-arena kernels must all agree on it;
- ``security_2nd`` keeps LP first, so the fixpoint is unique and the
  batched fixpoint builder must match the reference simulator exactly;
- ``security_1st`` can admit multiple stable states (Lychev et al.,
  PAPERS.md), so its output is checked for *stability* — no node has a
  strictly better GR2-valid offer — rather than for exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings

from repro.routing.arena import RoutingArena, compute_trees_batched
from repro.routing.fast_tree import compute_tree
from repro.routing.policy import RouteClass, get_policy
from repro.routing.reference import ConvergenceError, simulate_bgp
from repro.routing.tree import compute_dest_routing

from tests.strategies import graphs_with_security

_CUSTOMER = int(RouteClass.CUSTOMER)
_SELF = int(RouteClass.SELF)


def _route_class(graph, u: int, v: int) -> int:
    """Route class of a route ``u`` would learn from neighbor ``v``."""
    if v in graph.customers[u]:
        return int(RouteClass.CUSTOMER)
    if v in graph.peers[u]:
        return int(RouteClass.PEER)
    return int(RouteClass.PROVIDER)


def _neighbors(graph, u: int):
    return list(graph.customers[u]) + list(graph.peers[u]) + list(graph.providers[u])


def _assert_structures_identical(a, b, context) -> None:
    assert (a.cls == b.cls).all(), context
    assert (a.lengths == b.lengths).all(), context
    assert (a.order == b.order).all(), context
    assert (a.indptr == b.indptr).all(), context
    assert (a.cands == b.cands).all(), context


class TestDefaultPolicyIsPureRefactor:
    def test_structures_bit_identical(self, small_graph):
        pol = get_policy("security_3rd")
        for dest in range(0, small_graph.n, 17):
            base = compute_dest_routing(small_graph, dest)
            via_policy = pol.build_dest_routing(small_graph, dest)
            _assert_structures_identical(base, via_policy, dest)
            assert via_policy.policy == "security_3rd"

    def test_alias_resolves_to_same_structures(self, small_graph):
        assert get_policy("gao-rexford") is get_policy("security_3rd")
        assert get_policy("default") is get_policy("security_3rd")

    def test_all_three_kernels_agree(self, small_graph):
        """Scalar tree, vectorised tree, and the batched arena kernel
        must produce identical choices on policy-built structures."""
        dests = list(range(0, small_graph.n, 11))
        routings = get_policy("security_3rd").build_many(small_graph, dests)
        secure = np.zeros(small_graph.n, dtype=bool)
        secure[::3] = True
        arena = RoutingArena.build(
            small_graph.n, dests, routings, policy="security_3rd"
        )
        bt = compute_trees_batched(arena, arena.all_slots(), secure, secure)
        for k, dr in enumerate(routings):
            tree = compute_tree(dr, secure, secure)
            assert (bt.choice[k] == tree.choice).all(), dests[k]
            assert (bt.secure[k] == tree.secure).all(), dests[k]


@given(graphs_with_security(max_nodes=12))
@settings(max_examples=25, deadline=None)
def test_security_2nd_matches_reference(graph_and_secure):
    """LP stays first, so the fixpoint is unique: batched Jacobi builder
    and the scalar reference simulator must agree on every label."""
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True
    pol = get_policy("security_2nd")
    dests = list(range(graph.n))
    routings = pol.build_many(
        graph, dests, node_secure=node_secure, breaks_ties=node_secure
    )
    for dest, dr in zip(dests, routings):
        try:
            selection = simulate_bgp(
                graph, dest, node_secure, node_secure, policy=pol
            )
        except ConvergenceError:  # pragma: no cover - LP-first converges
            assume(False)
        tree = compute_tree(dr, node_secure, node_secure)
        for i in range(graph.n):
            if i == dest:
                continue
            route = selection.get(i)
            if route is None:
                assert tree.choice[i] == -1, (dest, i)
            else:
                assert dr.lengths[i] == route.length, (dest, i)
                assert tree.choice[i] == route.path[1], (dest, i, route.path)


@given(graphs_with_security(max_nodes=12))
@settings(max_examples=25, deadline=None)
def test_security_1st_fixpoint_is_stable(graph_and_secure):
    """Every converged ``security_1st`` state must be *stable*: no node
    has a GR2-valid offer that strictly beats its selection on the
    ranked (SecP, LP, SP) key."""
    graph, secure_list = graph_and_secure
    node_secure = np.zeros(graph.n, dtype=bool)
    node_secure[secure_list] = True
    pol = get_policy("security_1st")
    dests = list(range(graph.n))
    try:
        routings = pol.build_many(
            graph, dests, node_secure=node_secure, breaks_ties=node_secure
        )
    except ConvergenceError:
        assume(False)  # oscillating instance: nothing to check
    for dest, dr in zip(dests, routings):
        tree = compute_tree(dr, node_secure, node_secure)
        for u in range(graph.n):
            if u == dest:
                continue
            applies = bool(node_secure[u])
            chosen = int(tree.choice[u])
            if chosen >= 0:
                selected = pol.rank_key(
                    route_class=int(dr.cls[u]), length=int(dr.lengths[u]),
                    secure=bool(tree.secure[chosen]), applies_secp=applies,
                    node=u, next_hop=chosen,
                )[:3]
            else:
                selected = None
            for v in _neighbors(graph, u):
                if v != dest and tree.choice[v] < 0:
                    continue  # v has no route to offer
                cls_v = _SELF if v == dest else int(dr.cls[v])
                if _route_class(graph, u, v) != int(RouteClass.PROVIDER) \
                        and cls_v not in (_CUSTOMER, _SELF):
                    continue  # GR2: v may not announce this route to u
                offered = pol.rank_key(
                    route_class=_route_class(graph, u, v),
                    length=int(dr.lengths[v]) + 1 if v != dest else 1,
                    secure=bool(node_secure[dest]) if v == dest
                    else bool(tree.secure[v]),
                    applies_secp=applies, node=u, next_hop=v,
                )[:3]
                assert selected is not None, (dest, u, v)
                assert offered >= selected, (dest, u, v, offered, selected)


@pytest.mark.parametrize("policy", ["security_1st", "security_2nd"])
def test_state_dependent_builders_on_generated_topology(small_graph, policy):
    """Smoke at fixture scale: the fixpoint builder handles the 200-AS
    generated topology with a mixed security state, and its trees pass
    through the vectorised kernel."""
    pol = get_policy(policy)
    secure = np.zeros(small_graph.n, dtype=bool)
    secure[::4] = True
    dests = list(range(0, small_graph.n, 23))
    routings = pol.build_many(
        small_graph, dests, node_secure=secure, breaks_ties=secure
    )
    for dest, dr in zip(dests, routings):
        assert dr.policy == policy
        assert dr.cls[dest] == int(RouteClass.SELF)
        tree = compute_tree(dr, secure, secure)
        reachable = np.flatnonzero(dr.lengths > 0)
        assert (tree.choice[reachable] >= 0).all()
