"""Traffic-weight model (Section 3.1).

Each AS ``n`` has a weight ``w_n`` modelling the volume of traffic it
originates.  Stubs and ISPs have unit weight; the five content providers
together originate an ``x`` fraction of all Internet traffic, split
equally:

    ``5 * w_CP = x * (N_other + 5 * w_CP)``
    ``=> w_CP = x * N_other / (5 * (1 - x))``

The paper reports ``w_CP = 821`` for ``x = 10%`` on the 36,964-AS graph,
which this formula reproduces (a unit test pins that number).
"""

from __future__ import annotations

from repro.topology.graph import ASGraph


def content_provider_weight(num_other_ases: int, x: float, num_cps: int = 5) -> float:
    """Weight each CP needs so that CPs originate an ``x`` traffic fraction.

    Parameters
    ----------
    num_other_ases:
        Number of non-CP ASes (each with unit weight).
    x:
        Fraction of total traffic originated by the CPs combined,
        ``0 <= x < 1``.
    num_cps:
        Number of content providers sharing the ``x`` fraction.
    """
    if not 0 <= x < 1:
        raise ValueError(f"x must be in [0, 1), got {x}")
    if num_cps <= 0:
        raise ValueError(f"num_cps must be positive, got {num_cps}")
    if x == 0:
        return 1.0
    return x * num_other_ases / (num_cps * (1 - x))


def apply_traffic_model(graph: ASGraph, x: float) -> float:
    """Assign weights: unit for stubs/ISPs, ``w_CP`` for content providers.

    Returns the CP weight that was applied.  ``x`` is the combined
    traffic fraction of the graph's content providers.
    """
    cps = graph.cp_indices
    if not cps:
        if x > 0:
            raise ValueError("graph has no content providers but x > 0")
        return 1.0
    w_cp = content_provider_weight(graph.n - len(cps), x, num_cps=len(cps))
    weights = graph.weights
    weights[:] = 1.0
    for i in cps:
        weights[i] = w_cp
    return w_cp


def traffic_fraction_of(graph: ASGraph, indices: list[int]) -> float:
    """Fraction of total originated traffic sourced by ``indices``."""
    total = float(graph.weights.sum())
    if total == 0:
        return 0.0
    return float(graph.weights[indices].sum()) / total
