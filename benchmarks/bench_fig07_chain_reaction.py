"""Figure 7: longer secure paths sustain deployment (§5.4).

Paper: AS 8359's round-4 deployment lets its neighbor AS 6371 compete
in round 5, which in turn enables AS 41209 in round 7 — adoption chains
radiating outward from the early adopters.  Shape: adopters in round
k >= 2 that are graph neighbors of round-(k-1) adopters exist in
numbers.
"""

from __future__ import annotations

from benchmarks.conftest import case_study_report


def test_fig07_chain_reactions(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    chains = report.fig7_chains
    g = env.graph
    with capsys.disabled():
        print()
        print(f"Fig 7: {len(chains)} neighbor-enabled adoptions found")
        for enabler, adopter, round_index in chains[:5]:
            print(f"  round {round_index}: AS {g.asn(adopter)} deploys after "
                  f"neighbor AS {g.asn(enabler)} deployed in round {round_index - 1}")
    assert chains, "no chain reactions: deployment did not propagate"
