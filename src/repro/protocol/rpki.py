"""Simulated RPKI: the cryptographic root of trust (Section 1, [18]).

The RPKI authoritatively maps ASes to their IP prefixes and public
keys.  This module simulates it: "keys" are random secrets held in the
registry and "signatures" are HMAC-SHA256 tags.  That is *not* a real
PKI — there is no asymmetry — but it is behaviourally equivalent for a
simulator: only the key holder (or the trusted registry, standing in
for certificate verification) can produce a tag that verifies, so
forged announcements fail validation exactly where they would with real
signatures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import os


@dataclasses.dataclass(frozen=True)
class Prefix:
    """An IP prefix, e.g. ``Prefix("203.0.113.0", 24)``."""

    network: str
    length: int

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"


@dataclasses.dataclass(frozen=True)
class ROA:
    """Route Origin Authorization: ``asn`` may originate ``prefix``."""

    prefix: Prefix
    asn: int


# Root of the RPKI error family; stays with the RPKI model because the
# protocol package has no errors.py and every subclass is defined (and
# raised) in this file only.
class RPKIError(Exception):  # repro-lint: disable=RPR008
    """Base error for RPKI operations."""


class UnknownKeyError(RPKIError, KeyError):
    """An AS has no registered key."""

    def __init__(self, asn: int):
        super().__init__(f"AS {asn} has no key registered in the RPKI")
        self.asn = asn


class RPKI:
    """Registry of per-AS keys and route-origin authorizations.

    A deterministic ``seed`` makes key material reproducible across
    runs, which simulations and tests rely on.
    """

    def __init__(self, seed: bytes | None = None):
        self._seed = seed if seed is not None else os.urandom(16)
        self._keys: dict[int, bytes] = {}
        self._roas: dict[Prefix, set[int]] = {}
        self._delegations: dict[int, set[int]] = {}

    # -- keys ----------------------------------------------------------
    def register_as(self, asn: int) -> None:
        """Create key material for ``asn`` (idempotent)."""
        if asn not in self._keys:
            self._keys[asn] = hashlib.sha256(self._seed + str(asn).encode()).digest()

    def has_key(self, asn: int) -> bool:
        """True if ``asn`` participates in the RPKI."""
        return asn in self._keys

    def _key(self, asn: int) -> bytes:
        try:
            return self._keys[asn]
        except KeyError:
            raise UnknownKeyError(asn) from None

    def sign(self, asn: int, message: bytes) -> bytes:
        """Produce ``asn``'s signature over ``message``."""
        return hmac.new(self._key(asn), message, hashlib.sha256).digest()

    def delegate_key(self, owner: int, delegate: int) -> None:
        """``owner`` hands its signing key to ``delegate``.

        The §2.2.1 footnote's shortcut: a stub lets its ISP sign for it
        ("a good first step on the path to deployment" but "ceding
        control of cryptographic keys comes at the cost of reduced
        security").  Afterwards :meth:`sign_for` lets the delegate
        produce signatures indistinguishable from the owner's — which
        is precisely the reduced security: a malicious delegate can
        forge *valid* announcements in the owner's name.
        """
        self.register_as(owner)
        self.register_as(delegate)
        self._delegations.setdefault(owner, set()).add(delegate)

    def revoke_delegation(self, owner: int, delegate: int) -> None:
        """Remove a delegation (idempotent)."""
        self._delegations.get(owner, set()).discard(delegate)

    def is_delegate(self, owner: int, delegate: int) -> bool:
        """True if ``delegate`` may sign on behalf of ``owner``."""
        return delegate in self._delegations.get(owner, ())

    def sign_for(self, delegate: int, owner: int, message: bytes) -> bytes:
        """Produce ``owner``'s signature using a delegated key.

        Raises :class:`PermissionError` if no delegation exists.
        """
        if not self.is_delegate(owner, delegate):
            raise PermissionError(
                f"AS {delegate} holds no delegation from AS {owner}"
            )
        return self.sign(owner, message)

    def verify(self, asn: int, message: bytes, signature: bytes) -> bool:
        """Check a signature; False for unknown ASes or bad tags."""
        if asn not in self._keys:
            return False
        expected = hmac.new(self._keys[asn], message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

    # -- ROAs ----------------------------------------------------------
    def issue_roa(self, prefix: Prefix, asn: int) -> ROA:
        """Authorize ``asn`` to originate ``prefix``."""
        self.register_as(asn)
        self._roas.setdefault(prefix, set()).add(asn)
        return ROA(prefix=prefix, asn=asn)

    def origin_valid(self, prefix: Prefix, asn: int) -> bool:
        """RPKI origin validation: is ``asn`` authorized for ``prefix``?"""
        return asn in self._roas.get(prefix, ())

    def has_roa(self, prefix: Prefix) -> bool:
        """True if any ROA covers ``prefix``."""
        return prefix in self._roas
