"""The BGP routing-policy model of Appendix A, as a pluggable object.

Every AS ranks the routes it learns to a destination by three criteria
plus a deterministic tie-break:

``LP``  local preference: customer routes over peer routes over provider
        routes;
``SP``  shortest AS path;
``SecP`` if the AS is *secure* and applies the criterion, fully-secure
        paths over insecure ones (the paper's proposal, §2.2.2);
``TB``  a deterministic hash tie-break ``H(a, b)`` on the next hop.

The paper fixes the order ``LP > SP > SecP > TB`` ("security 3rd");
Lychev, Goldberg & Schapira (PAPERS.md) showed that *where* security
sits in that ranking qualitatively changes partial-deployment outcomes.
:class:`RoutingPolicy` makes the ranking a first-class value consumed by
every route-computation layer (scalar reference, vectorised kernels,
batched arena, projection, per-link fixpoint), and the registry below
names the variants:

========================  ==============================  =================
name                      ranking                         structure
========================  ==============================  =================
``security_3rd``          ``LP > SP  > SecP > TB``        state-independent
``security_2nd``          ``LP > SecP > SP  > TB``        state-dependent
``security_1st``          ``SecP > LP > SP  > TB``        state-dependent
``sp_first``              ``SP > LP  > SecP > TB``        state-independent
``sticky_primaries``      ``LP > SP  > SecP > TB`` [*]_   state-independent
========================  ==============================  =================

.. [*] sticky primaries keeps the default ranking but collapses a fixed
   fraction of ASes' tiebreak sets to a single primary (§8.3).

Export always follows GR2: AS ``b`` announces a route via ``c`` to
neighbor ``a`` iff at least one of ``a`` and ``c`` is ``b``'s customer.

"State-independent" policies satisfy Observation C.1: route class and
length per node do not depend on the deployment state, so one
:class:`~repro.routing.tree.DestRouting` structure serves every state
and only the tie-break resolution is re-run per round.  For
state-dependent policies (SecP outranks SP or LP) the *structure* itself
moves with the security flags, and the cache/projection layers rebuild
it per state (see :mod:`repro.routing.fixpoint`).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle (tree imports policy)
    from repro.routing.compiled import CompiledGraph
    from repro.routing.tree import DestRouting
    from repro.topology.graph import ASGraph


class RouteClass(enum.IntEnum):
    """Local-preference class of a selected route (higher = preferred)."""

    UNREACHABLE = -1
    PROVIDER = 0
    PEER = 1
    CUSTOMER = 2
    SELF = 3  # the destination's own (empty) route


# plain-int views of the classes for the Python-loop builders below:
# int(RouteClass.X) costs an enum __int__ dispatch, far too slow for
# per-node inner loops
_SELF = int(RouteClass.SELF)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)
_UNREACHABLE = int(RouteClass.UNREACHABLE)


class Criterion(enum.Enum):
    """One step of a routing policy's preference ranking."""

    LP = "lp"      # local preference (route class)
    SP = "sp"      # shortest path
    SECP = "secp"  # secure paths first (when the node applies it)


#: number of low bits of the tie-break key reserved for the candidate's
#: position within a tiebreak set (used to disambiguate hash collisions)
POSITION_BITS = 16

_MIX_1 = np.uint64(0x9E3779B97F4A7C15)
_MIX_2 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_3 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64


def tie_hash(node: int, candidate: int) -> int:
    """Deterministic 64-bit tie-break hash ``H(node, candidate)``.

    The paper breaks ties by "the path where hash H(a, b) is lowest"
    (Appendix A, TB).  Any fixed pseudo-random function works; this is a
    splitmix64-style mix over the dense indices, stable across runs and
    platforms.
    """
    return int(tie_hash_array(np.array([node], dtype=np.uint64),
                              np.array([candidate], dtype=np.uint64))[0])


def tie_hash_array(nodes: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Vectorised :func:`tie_hash` over aligned uint64 arrays."""
    x = nodes.astype(np.uint64) * _MIX_1 + candidates.astype(np.uint64) * _MIX_3
    x ^= x >> _U64(30)
    x *= _MIX_2
    x ^= x >> _U64(27)
    x *= _MIX_3
    x ^= x >> _U64(31)
    return x


def exportable_to(route_class: RouteClass, neighbor_is_customer: bool) -> bool:
    """GR2: may a route of ``route_class`` be announced to this neighbor?

    ``neighbor_is_customer`` is True when the announcing AS would send
    the route to one of its customers (always allowed); otherwise the
    route must be a customer route or the announcer's own prefix.
    """
    if neighbor_is_customer:
        return route_class is not RouteClass.UNREACHABLE
    return route_class in (RouteClass.CUSTOMER, RouteClass.SELF)


#: salt for the deterministic sticky-primary node mask (any fixed value)
_STICKY_SALT = 0x5F1CC


@dataclasses.dataclass(frozen=True)
class RoutingPolicy:
    """A complete route-selection policy: ranking + GR2 export.

    ``ranking`` is a permutation of the three :class:`Criterion` values;
    TB is always last.  ``sticky_fraction`` > 0 collapses that fraction
    of nodes' tiebreak sets to their hash-preferred primary (§8.3's
    sticky-primaries deviation) after the structure is built.
    """

    name: str
    ranking: tuple[Criterion, Criterion, Criterion]
    sticky_fraction: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if sorted(c.value for c in self.ranking) != ["lp", "secp", "sp"]:
            raise ValueError(
                f"ranking must be a permutation of (LP, SP, SECP), got {self.ranking}"
            )
        if not 0.0 <= self.sticky_fraction <= 1.0:
            raise ValueError(
                f"sticky_fraction must be in [0, 1], got {self.sticky_fraction}"
            )

    # -- classification -------------------------------------------------

    @property
    def state_dependent(self) -> bool:
        """Does the *structure* (class/length/tiebreak sets) move with S?

        Under Observation C.1 the SecP step only picks within the
        tiebreak set, which holds exactly when SecP is the last ranked
        criterion.  When SecP outranks SP or LP, a security flip can
        change selected classes and lengths, so every per-state
        structure must be rebuilt (see :mod:`repro.routing.fixpoint`).
        """
        return self.ranking[-1] is not Criterion.SECP

    def ranking_str(self) -> str:
        """Human-readable ranking, e.g. ``"LP > SP > SecP > TB"``."""
        names = {Criterion.LP: "LP", Criterion.SP: "SP", Criterion.SECP: "SecP"}
        return " > ".join(names[c] for c in self.ranking) + " > TB"

    # -- the scalar rank key (reference simulator, per-link fixpoint) ---

    def rank_key(
        self,
        route_class: int,
        length: int,
        secure: bool,
        applies_secp: bool,
        node: int,
        next_hop: int,
    ) -> tuple:
        """Comparable key for one offered route at ``node`` (lower wins).

        ``secure`` is the offered path's security; ``applies_secp`` is
        whether ``node`` applies the SecP criterion (secure and
        tie-breaking).  The trailing ``(tie_hash, next_hop)`` pair is
        the TB step, identical across policies.
        """
        parts: list[int] = []
        for crit in self.ranking:
            if crit is Criterion.LP:
                parts.append(-int(route_class))
            elif crit is Criterion.SP:
                parts.append(int(length))
            else:
                parts.append(0 if (applies_secp and secure) else 1)
        parts.append(tie_hash(node, next_hop))
        parts.append(int(next_hop))
        return tuple(parts)

    def exportable(self, route_class: RouteClass, neighbor_is_customer: bool) -> bool:
        """GR2 export rule (shared by every registered policy)."""
        return exportable_to(route_class, neighbor_is_customer)

    # -- sticky primaries ----------------------------------------------

    def sticky_mask(self, n: int) -> np.ndarray | None:
        """Deterministic bool[n] mask of sticky nodes (None when 0.0).

        A node is sticky iff its salted hash falls below
        ``sticky_fraction`` — stable across runs, no RNG state to ship
        between processes.
        """
        if self.sticky_fraction <= 0.0:
            return None
        nodes = np.arange(n, dtype=np.uint64)
        salt = np.full(n, _STICKY_SALT, dtype=np.uint64)
        frac = tie_hash_array(salt, nodes).astype(np.float64) / float(2**64)
        return frac < self.sticky_fraction

    # -- structure builders --------------------------------------------

    def build_dest_routing(
        self,
        graph: "ASGraph",
        dest: int,
        compiled: "CompiledGraph | None" = None,
        node_secure: np.ndarray | None = None,
        breaks_ties: np.ndarray | None = None,
        backend: str | None = None,
    ) -> "DestRouting":
        """Build the per-destination structure under this policy.

        For state-independent policies ``node_secure``/``breaks_ties``
        are ignored (the structure serves every state).  For
        state-dependent policies they default to all-insecure.
        ``backend`` names the kernel backend for the fixpoint sweeps
        (:mod:`repro.routing.backends`; ``None`` = env var, then numpy).
        """
        return self.build_many(
            graph, [dest], compiled, node_secure=node_secure,
            breaks_ties=breaks_ties, backend=backend,
        )[0]

    def build_many(
        self,
        graph: "ASGraph",
        dests: Iterable[int],
        compiled: "CompiledGraph | None" = None,
        node_secure: np.ndarray | None = None,
        breaks_ties: np.ndarray | None = None,
        backend: str | None = None,
    ) -> "list[DestRouting]":
        """Batched :meth:`build_dest_routing` (one fixpoint sweep set
        covers the whole batch for state-dependent policies)."""
        dests = [int(d) for d in dests]
        if self.state_dependent:
            from repro.routing.fixpoint import fixpoint_dest_routings

            routings = fixpoint_dest_routings(
                graph, dests, self, compiled,
                node_secure=node_secure, breaks_ties=breaks_ties,
                backend=backend,
            )
        else:
            base = self._base_builder()
            from repro.routing.compiled import CompiledGraph

            cg = compiled or CompiledGraph.from_graph(graph)
            routings = [base(graph, d, cg) for d in dests]
        sticky = self.sticky_mask(graph.n)
        if sticky is not None:
            routings = [restrict_to_primary(r, sticky) for r in routings]
        for r in routings:
            r.policy = self.name
        return routings

    def _base_builder(self) -> "Callable[..., DestRouting]":
        """State-independent structure builder for this ranking."""
        if self.ranking[0] is Criterion.SP:
            return compute_dest_routing_sp_first
        from repro.routing.tree import compute_dest_routing

        return compute_dest_routing


# -- the §8.3 variant builders ------------------------------------------
#
# The paper's §8.3 speculates about two deviations from the Appendix-A
# model; both produce standard DestRouting structures, so the entire
# deployment game runs unchanged on top of them:
#
# - shortest-path-first ("we speculate that considering shortest path
#   routing policy would lead to overly optimistic results"): ranking
#   SP > LP > SecP > TB, built by compute_dest_routing_sp_first below
#   and selected by _base_builder when SP leads the ranking;
# - sticky primaries ("if a large fraction of multihomed ASes always
#   use one provider as primary ... our current analysis is likely to
#   be overly optimistic"): restrict_to_primary collapses sticky nodes'
#   tiebreak sets to a single fixed choice after the structure is built.


def compute_dest_routing_sp_first(
    graph: "ASGraph", dest: int, compiled: "CompiledGraph | None" = None
) -> "DestRouting":
    """Per-destination routing with ``SP > LP`` ranking (GR2 export).

    Selected routes are found by bucketed Dijkstra over unit weights:
    when a node is finalised, its selected class determines what it may
    export (everything to customers; only customer routes across
    peerings and to providers).  Among the minimum-length candidates a
    node prefers customer over peer over provider next hops (LP as the
    second criterion), and its tiebreak set is the candidates matching
    that (length, class) optimum.
    """
    from repro.routing.tree import DestRouting

    n = graph.n
    dist = np.full(n, -1, dtype=np.int32)
    cls = np.full(n, _UNREACHABLE, dtype=np.int8)
    dist[dest] = 0
    cls[dest] = _SELF

    # candidates[v] -> list of (next_hop, class_at_v)
    candidates: dict[int, list[tuple[int, int]]] = defaultdict(list)
    buckets: dict[int, list[int]] = {0: [dest]}
    finalized = np.zeros(n, dtype=bool)
    level = 0
    max_level = 0
    while level <= max_level:
        for u in buckets.pop(level, ()):  # noqa: B909 - buckets mutated below
            if finalized[u]:
                continue
            finalized[u] = True
            if u != dest:
                # LP as the second criterion: the selected class is the
                # best among the minimum-length candidates, fixed now so
                # export decisions below can use it
                cls[u] = max(c for _, c in candidates[u])
            exports_everywhere = cls[u] in (_CUSTOMER, _SELF)
            du = int(dist[u])
            for v, class_at_v in _neighbor_views(graph, u):
                # GR2: u announces to v iff v is u's customer, or u's
                # selected route is a customer route / its own prefix
                v_is_customer_of_u = class_at_v == _PROVIDER
                if not (v_is_customer_of_u or exports_everywhere):
                    continue
                if finalized[v]:
                    continue
                cand = du + 1
                if dist[v] == -1 or cand < dist[v]:
                    dist[v] = cand
                    candidates[v] = [(u, class_at_v)]
                    buckets.setdefault(cand, []).append(v)
                    max_level = max(max_level, cand)
                elif cand == dist[v]:
                    candidates[v].append((u, class_at_v))
        level += 1

    order = np.flatnonzero(dist != -1).astype(np.int32)
    sort = np.lexsort((order, dist[order]))
    order = order[sort]
    row_of = np.full(n, -1, dtype=np.int32)
    row_of[order] = np.arange(len(order), dtype=np.int32)

    max_len = int(dist[order[-1]]) if len(order) else 0
    level_starts = np.searchsorted(
        dist[order], np.arange(max_len + 2), side="left"
    ).astype(np.int32)

    indptr = np.zeros(len(order) + 1, dtype=np.int64)
    flat: list[int] = []
    for row, v in enumerate(order):
        v = int(v)
        if v == dest:
            indptr[row + 1] = indptr[row]
            continue
        best_class = cls[v]
        chosen = sorted(u for u, c in candidates[v] if c == best_class)
        flat.extend(chosen)
        indptr[row + 1] = indptr[row] + len(chosen)

    return DestRouting(
        dest=dest,
        cls=cls,
        lengths=dist,
        order=order,
        row_of=row_of,
        level_starts=level_starts,
        indptr=indptr,
        cands=np.asarray(flat, dtype=np.int32),
    )


def _neighbor_views(graph: "ASGraph", u: int):
    """Yield ``(neighbor, neighbor's class for a route via u)``."""
    for v in graph.customers[u]:
        yield v, _PROVIDER   # v reaches u as its provider
    for v in graph.providers[u]:
        yield v, _CUSTOMER   # v reaches u as its customer
    for v in graph.peers[u]:
        yield v, _PEER


def restrict_to_primary(
    dr: "DestRouting", sticky: np.ndarray
) -> "DestRouting":
    """Collapse sticky nodes' tiebreak sets to their fixed primary.

    ``sticky`` is a bool[n] mask.  The primary is the candidate the
    node's hash tie-break would pick in a security-free world, so the
    restriction never changes insecure routing — it only removes the
    competition SecP could have exploited.
    """
    from repro.routing.tree import DestRouting

    order, indptr, cands = dr.order, dr.indptr, dr.cands
    new_cands: list[int] = []
    new_indptr = np.zeros(len(order) + 1, dtype=np.int64)
    for row, node in enumerate(order):
        node = int(node)
        cs = cands[indptr[row]:indptr[row + 1]]
        if len(cs) > 1 and sticky[node]:
            keys = tie_hash_array(
                np.full(len(cs), node, dtype=np.uint64), cs.astype(np.uint64)
            )
            keys = (keys & ~np.uint64((1 << POSITION_BITS) - 1)) | np.arange(
                len(cs), dtype=np.uint64
            )
            cs = cs[int(np.argmin(keys)):][:1]
        new_cands.extend(int(c) for c in cs)
        new_indptr[row + 1] = new_indptr[row] + len(cs)
    return DestRouting(
        dest=dr.dest,
        cls=dr.cls,
        lengths=dr.lengths,
        order=order,
        row_of=dr.row_of,
        level_starts=dr.level_starts,
        indptr=new_indptr,
        cands=np.asarray(new_cands, dtype=np.int32),
    )


# -- the registry -------------------------------------------------------

_REGISTRY: dict[str, RoutingPolicy] = {}
_ALIASES: dict[str, str] = {}

#: canonical name of the paper's Appendix-A policy
DEFAULT_POLICY = "security_3rd"


def register_policy(policy: RoutingPolicy, aliases: Iterable[str] = ()) -> RoutingPolicy:
    """Add ``policy`` to the registry (idempotent for identical entries)."""
    existing = _REGISTRY.get(policy.name)
    if existing is not None and existing != policy:
        raise ValueError(f"policy {policy.name!r} already registered differently")
    _REGISTRY[policy.name] = policy
    for alias in aliases:
        target = _ALIASES.get(alias)
        if target is not None and target != policy.name:
            raise ValueError(f"alias {alias!r} already points at {target!r}")
        _ALIASES[alias] = policy.name
    return policy


def get_policy(policy: "str | RoutingPolicy") -> RoutingPolicy:
    """Resolve a policy name (or alias, or policy object) to the object."""
    if isinstance(policy, RoutingPolicy):
        return policy
    name = _ALIASES.get(policy, policy)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choose from {available_policies()}"
        ) from None


def available_policies() -> list[str]:
    """Canonical names of every registered policy, sorted."""
    return sorted(_REGISTRY)


def policy_table() -> list[tuple[str, str, str]]:
    """``(name, ranking, description)`` rows for docs and ``--help``."""
    return [
        (p.name, p.ranking_str(), p.description)
        for p in (_REGISTRY[k] for k in available_policies())
    ]


_LP, _SP, _SECP = Criterion.LP, Criterion.SP, Criterion.SECP

register_policy(
    RoutingPolicy(
        name="security_3rd",
        ranking=(_LP, _SP, _SECP),
        description="Appendix A default: security breaks ties only",
    ),
    aliases=("default", "gao-rexford"),
)

register_policy(
    RoutingPolicy(
        name="security_2nd",
        ranking=(_LP, _SECP, _SP),
        description="security above path length (Lychev et al. '2nd')",
    ),
)

register_policy(
    RoutingPolicy(
        name="security_1st",
        ranking=(_SECP, _LP, _SP),
        description="security above everything (Lychev et al. '1st')",
    ),
)

register_policy(
    RoutingPolicy(
        name="sp_first",
        ranking=(_SP, _LP, _SECP),
        description="shortest-path-first deviation (§8.3)",
    ),
    aliases=("sp-first",),
)

register_policy(
    RoutingPolicy(
        name="sticky_primaries",
        ranking=(_LP, _SP, _SECP),
        sticky_fraction=0.5,
        description="half the ASes pin a fixed primary next hop (§8.3)",
    ),
    aliases=("sticky",),
)
