"""``python -m repro.analysis`` — same entry point as ``sbgp-lint``."""

from repro.analysis.cli import main

raise SystemExit(main())
