"""Tests for the Section-5 case-study driver."""

from __future__ import annotations

import math

import pytest

from repro.experiments.case_study import run_case_study


@pytest.fixture(scope="module")
def report(medium_env):
    return run_case_study(medium_env, theta=0.05)


class TestCaseStudy:
    def test_majority_secured(self, report):
        # paper: 85% of ASes at theta = 5%
        assert report.fraction_secure_ases > 0.5

    def test_fig3_series_lengths(self, report):
        assert len(report.fig3_new_ases) == report.result.num_rounds
        assert len(report.fig3_new_isps) == report.result.num_rounds

    def test_fig3_first_round_surge(self, report):
        """§5.2: the first round secures many ASes at once (ISPs plus
        their simplex stubs)."""
        assert report.fig3_new_ases[0] > report.fig3_new_isps[0]

    def test_fig4_characters_found(self, report):
        assert report.fig4_utilities, "no focal ISPs identified"
        for label, series in report.fig4_utilities.items():
            assert len(series) == report.result.num_rounds + 1
            # normalised by *starting* (pre-deployment) utility; round 1
            # already includes the early adopters, so only approximately 1
            assert series[0] == pytest.approx(1.0, rel=0.5)

    def test_fig5_projected_exceeds_threshold(self, report):
        """Adopters' projections must exceed (1+theta) x current — that
        is the definition of the update rule."""
        for record in report.result.rounds:
            for isp in record.turned_on:
                proj = record.projections[isp].utility
                assert proj > 1.05 * float(record.utilities[isp]) - 1e-9

    def test_fig5_medians_finite_when_adopting(self, report):
        rounds_with_adopters = [
            k for k, r in enumerate(report.result.rounds) if r.turned_on
        ]
        for k in rounds_with_adopters:
            assert not math.isnan(report.fig5_median_projected[k])

    def test_fig6_buckets_monotone(self, report):
        """Cumulative adoption per degree bucket never decreases
        (outgoing model: Theorem 6.2)."""
        for label, series in report.fig6_adoption_by_bucket.items():
            assert series == sorted(series), label

    def test_fig6_high_degree_adopts_more(self, report):
        """§5.3: high-degree ISPs are more likely to deploy."""
        buckets = report.fig6_adoption_by_bucket
        labels = list(buckets)
        low, high = buckets[labels[0]], buckets[labels[-1]]
        assert high[-1] >= low[-1]

    def test_fig7_chains_exist(self, report):
        """§5.4: adoption propagates outward from earlier adopters."""
        assert report.fig7_chains
        for enabler, adopter, round_index in report.fig7_chains:
            assert round_index >= 2

    def test_table1_counts_positive(self, report):
        assert report.table1.total_contested > 0

    def test_zero_sum_insecure_lose(self, report):
        assert report.zero_sum.mean_final_over_start_insecure <= 1.0
