"""Security and deployment metrics (Figures 3, 8, 9; §5.6, §6.4-6.5).

The paper's headline measures:

- fraction of ASes secure at termination (Fig. 8a);
- fraction of *ISPs* that deploy, isolating market pressure from
  simplex-stub upgrades (Fig. 8b, §6.5);
- fraction of secure source-destination paths, which tracks ``f^2``
  where ``f`` is the secure-AS fraction (Fig. 9, §6.4);
- utility outcomes relative to the pre-deployment baseline (§5.6).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.dynamics import SimulationResult
from repro.core.engine import RoundData
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class SecuritySnapshot:
    """Security level of one deployment state."""

    fraction_secure_ases: float
    fraction_secure_isps: float
    fraction_secure_paths: float
    f_squared: float  # the Fig. 9 reference curve

    @property
    def path_gap_vs_f2(self) -> float:
        """How far secure-path coverage falls below the ``f^2`` bound."""
        return self.f_squared - self.fraction_secure_paths


def security_snapshot(graph: ASGraph, rd: RoundData) -> SecuritySnapshot:
    """Compute a :class:`SecuritySnapshot` from resolved round data."""
    n = graph.n
    node_secure = rd.node_secure
    f = float(node_secure.sum()) / n if n else 0.0

    roles = graph.roles
    isps = roles == int(ASRole.ISP)
    f_isp = float(node_secure[isps].sum()) / max(1, int(isps.sum()))

    # sec_matrix[k, i] is the security of i's chosen path to dest k; a
    # (src=dest) pair counts as secure iff the AS itself is secure,
    # mirroring the paper's (36K)^2 accounting.
    num_dests = rd.sec_matrix.shape[0]
    secure_pairs = float(rd.sec_matrix.sum())
    dests = np.asarray(
        [rd.dest_states[k].dr.dest for k in range(num_dests)], dtype=np.int64
    )
    # sec_matrix rows have sec[dest] = node_secure[dest]; that diagonal
    # entry stands for the trivial path and is kept.
    total_pairs = float(num_dests * n)
    return SecuritySnapshot(
        fraction_secure_ases=f,
        fraction_secure_isps=f_isp,
        fraction_secure_paths=secure_pairs / total_pairs if total_pairs else 0.0,
        f_squared=f * f,
    )


@dataclasses.dataclass(frozen=True)
class DeploymentOutcome:
    """End-of-run adoption measures for one simulation (Fig. 8)."""

    fraction_secure_ases: float
    fraction_secure_isps: float       # ISPs running S*BGP (Fig. 8b)
    fraction_isps_by_market: float    # secure ISPs excluding early adopters
    fraction_secure_stubs: float
    num_rounds: int
    outcome: str


def deployment_outcome(result: SimulationResult) -> DeploymentOutcome:
    """Summarise a finished simulation."""
    graph = result.graph
    secure = result.final_node_secure
    roles = graph.roles
    isps = np.flatnonzero(roles == int(ASRole.ISP))
    stubs = np.flatnonzero(roles == int(ASRole.STUB))
    secure_isps = [i for i in isps if secure[i]]
    market = [i for i in secure_isps if i not in result.early_adopters]
    return DeploymentOutcome(
        fraction_secure_ases=float(secure.sum()) / max(1, graph.n),
        fraction_secure_isps=len(secure_isps) / max(1, len(isps)),
        fraction_isps_by_market=len(market) / max(1, len(isps)),
        fraction_secure_stubs=float(secure[stubs].sum()) / max(1, len(stubs)),
        num_rounds=result.num_rounds,
        outcome=result.outcome.value,
    )


@dataclasses.dataclass(frozen=True)
class ZeroSumAnalysis:
    """§5.6: who won and who lost relative to starting utility."""

    fraction_isps_above_threshold: float  # ended > (1+theta) * start
    mean_final_over_start_secure: float
    mean_final_over_start_insecure: float  # the paper: insecure lose ~13%


def zero_sum_analysis(result: SimulationResult, theta: float | None = None) -> ZeroSumAnalysis:
    """Compare final vs starting utilities for secure and insecure ISPs."""
    theta = result.config.theta if theta is None else theta
    graph = result.graph
    roles = graph.roles
    secure = result.final_node_secure
    start = result.starting_utilities
    final = result.final_utilities

    winners = 0
    total = 0
    ratios_secure: list[float] = []
    ratios_insecure: list[float] = []
    for i in range(graph.n):
        if roles[i] != int(ASRole.ISP) or start[i] <= 0:
            continue
        total += 1
        ratio = float(final[i] / start[i])
        if ratio > 1.0 + theta:
            winners += 1
        if secure[i]:
            ratios_secure.append(ratio)
        else:
            ratios_insecure.append(ratio)
    return ZeroSumAnalysis(
        fraction_isps_above_threshold=winners / total if total else 0.0,
        mean_final_over_start_secure=float(np.mean(ratios_secure)) if ratios_secure else 0.0,
        mean_final_over_start_insecure=float(np.mean(ratios_insecure)) if ratios_insecure else 0.0,
    )


def projection_accuracy(result: SimulationResult) -> list[float]:
    """Fig. 14: projected / realised utility for each adopting ISP.

    For every ISP that turned on in round ``i``, compare the projection
    it acted on against the utility it actually observed in round
    ``i+1`` (simultaneous moves make these differ, §8.1).
    """
    ratios: list[float] = []
    rounds = result.rounds
    for k, record in enumerate(rounds):
        nxt = rounds[k + 1].utilities if k + 1 < len(rounds) else result.final_utilities
        if nxt is None:
            continue
        for isp in record.turned_on:
            proj = record.projections[isp].utility
            actual = float(nxt[isp])
            if actual > 0:
                ratios.append(proj / actual)
    return ratios
