"""Projected utility ``u_n(~S_n, S_-n)`` (Section 3.3, Appendix C.4).

An ISP evaluates the utility it *would* obtain if it flipped its
deployment action while everyone else stayed put — including the side
effect that deploying secures its not-yet-secure stub customers (and
turning off orphans stubs whose only secure provider it was).

Two engines with identical outputs:

``FULL``
    Re-resolve the routing tree of every *relevant* destination in the
    flipped state.  Relevance pruning per Appendix C.4: destinations
    that are insecure in both states route identically, so only
    currently-secure destinations plus destinations whose own security
    the flip changes (the ISP itself and its stubs) can differ.

``INCREMENTAL``
    Additionally prune destinations where the flip demonstrably cannot
    change any routing decision (no member of the flip set has a secure
    tiebreak candidate to gain, or a secure path to lose), and for the
    remaining destinations propagate security changes level-by-level
    through the reverse tiebreak graph, touching only affected nodes.
    Traffic deltas are then integrated by walking the short paths of
    the sources whose routes moved.

Both engines assume Observation C.1 (structures are state-independent;
only tie-breaks move).  Under the state-dependent policies
(``security_1st`` / ``security_2nd``) every projection instead takes a
dedicated full-rebuild path that re-runs the fixpoint builder for the
destinations that can react to the flip — see
:func:`_project_flip_state_dependent`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import ProjectionEngine, UtilityModel
from repro.core.engine import (
    DestState,
    RoundData,
    incoming_contribution,
    outgoing_contribution,
)
from repro.core.state import StateDeriver
from repro.routing.arena import compute_trees_batched, subtree_weights_batched
from repro.routing.cache import RoutingCache
from repro.routing.fast_tree import compute_tree, subtree_weights
from repro.routing.policy import RouteClass
from repro.routing.tree import DestRouting

_CUSTOMER = int(RouteClass.CUSTOMER)
_PROVIDER = int(RouteClass.PROVIDER)
_BLOCKED = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclasses.dataclass(frozen=True)
class Projection:
    """Result of projecting one ISP's flip."""

    isp: int
    turning_on: bool
    utility: float            # projected utility of `isp` after the flip
    flips: dict[int, bool]    # node -> new security flag (isp and stubs)
    dests_recomputed: int     # full tree recomputations performed
    dests_delta: int          # incremental destinations actually touched


def project_flip(
    cache: RoutingCache,
    deriver: StateDeriver,
    rd: RoundData,
    isp: int,
    turning_on: bool,
    model: UtilityModel,
    engine: ProjectionEngine = ProjectionEngine.INCREMENTAL,
) -> Projection:
    """Projected utility of ``isp`` if it flipped its action this round."""
    graph = cache.graph
    if turning_on:
        stubs = deriver.newly_secured_stubs(rd.state, isp)
        flips: dict[int, bool] = {isp: True}
        flips.update({s: True for s in stubs})
    else:
        stubs = deriver.orphaned_stubs(rd.state, isp)
        flips = {isp: False}
        flips.update({s: False for s in stubs})

    node_secure_new = rd.node_secure.copy()
    for node, flag in flips.items():
        node_secure_new[node] = flag
    breaks_new = deriver.breaks_ties(node_secure_new)

    w = graph.weights

    if cache.policy.state_dependent:
        # the flip moves classes/lengths, not just tie-breaks: rebuild
        # the affected structures from scratch under the flipped state
        return _project_flip_state_dependent(
            cache, rd, isp, turning_on, flips,
            node_secure_new, breaks_new, model,
        )

    delta = 0.0
    recomputed = 0
    touched = 0

    # Destinations whose *own* security status changes always need a
    # full recompute; under the FULL engine so do all reroutable
    # candidates.  Everything needing a full recompute goes through the
    # batched arena kernel in ONE stacked pass.
    special_positions: set[int] = set()
    for node in flips:
        pos = cache.position_of(node)
        if pos is not None:
            special_positions.add(pos)
    candidates = _candidate_positions(cache, rd, isp, flips, turning_on, model)

    if engine is ProjectionEngine.FULL:
        full_positions = sorted(special_positions.union(int(p) for p in candidates))
        incremental_positions: list[int] = []
    else:
        full_positions = sorted(special_positions)
        incremental_positions = [
            int(p) for p in candidates if int(p) not in special_positions
        ]

    for pos, new_ds in _recompute_dest_states(
        cache, rd, full_positions, node_secure_new, breaks_new, w
    ):
        old_ds = rd.dest_states[pos]
        d = _contribution(new_ds, isp, w, model) - _contribution(old_ds, isp, w, model)
        recomputed += 1
        if pos not in special_positions and d:
            touched += 1
        delta += d

    # Remaining candidates: exact deltas via local propagation.
    for pos in incremental_positions:
        d = _incremental_delta(
            rd.dest_states[pos], node_secure_new, breaks_new, flips, isp, model, w
        )
        if d:
            touched += 1
        delta += d

    current = float(rd.utilities[isp])
    return Projection(
        isp=isp,
        turning_on=turning_on,
        utility=current + delta,
        flips=flips,
        dests_recomputed=recomputed,
        dests_delta=touched,
    )


def _contribution(ds: DestState, node: int, node_weights: np.ndarray, model: UtilityModel) -> float:
    if model is UtilityModel.OUTGOING:
        return outgoing_contribution(ds, node)
    return incoming_contribution(ds, node, node_weights)


def _project_flip_state_dependent(
    cache: RoutingCache,
    rd: RoundData,
    isp: int,
    turning_on: bool,
    flips: dict[int, bool],
    node_secure_new: np.ndarray,
    breaks_new: np.ndarray,
    model: UtilityModel,
) -> Projection:
    """FULL projection for policies where structures move with the state.

    The tiebreak-only machinery (arena re-resolution, incremental
    propagation, the ``sec``/``any_sec`` candidate refinements) assumes
    Observation C.1 and is invalid here.  What survives is the coarse
    pruning: a destination that is insecure in *both* states has
    all-insecure paths under any ranking, so its routing collapses to
    the security-free order of the policy and cannot react to the flip.
    Everything else — destinations secure in either state, plus the
    flipped nodes themselves — is rebuilt by the batched fixpoint under
    the flipped state and resolved per destination.
    """
    graph = cache.graph
    w = graph.weights
    dest_idx = np.asarray(cache.destinations, dtype=np.int64)
    relevant = rd.node_secure[dest_idx] | node_secure_new[dest_idx]
    special_positions = {
        pos for node in flips
        if (pos := cache.position_of(node)) is not None
    }
    positions = sorted(set(np.flatnonzero(relevant).tolist()) | special_positions)

    delta = 0.0
    touched = 0
    if positions:
        routings = cache.policy.build_many(
            graph,
            [cache.destinations[p] for p in positions],
            cache.compiled,
            node_secure=node_secure_new,
            breaks_ties=breaks_new,
        )
        for pos, dr_new in zip(positions, routings):
            tree = compute_tree(dr_new, node_secure_new, breaks_new)
            new_ds = DestState(
                dr=dr_new,
                tree=tree,
                weights=subtree_weights(dr_new, tree, w),
            )
            old_ds = rd.dest_states[pos]
            d = _contribution(new_ds, isp, w, model) - _contribution(
                old_ds, isp, w, model
            )
            if pos not in special_positions and d:
                touched += 1
            delta += d

    return Projection(
        isp=isp,
        turning_on=turning_on,
        utility=float(rd.utilities[isp]) + delta,
        flips=flips,
        dests_recomputed=len(positions),
        dests_delta=touched,
    )


def _recompute_dest_states(
    cache: RoutingCache,
    rd: RoundData,
    positions: list[int],
    node_secure_new: np.ndarray,
    breaks_new: np.ndarray,
    node_weights: np.ndarray,
):
    """Yield ``(pos, DestState)`` for fully recomputed destinations.

    When the cache carries a :class:`~repro.routing.arena.RoutingArena`
    (the normal case after the first round), all requested destinations
    are resolved in a single stacked pass of the batched kernel; the
    per-destination loop below is the fallback for caches warmed without
    an arena.
    """
    if not positions:
        return
    arena = cache.arena
    if arena is not None and len(positions) > 1:
        slots = np.asarray(positions, dtype=np.int64)
        bt = compute_trees_batched(arena, slots, node_secure_new, breaks_new)
        w2d = subtree_weights_batched(arena, slots, bt.choice, node_weights)
        for i, pos in enumerate(positions):
            yield pos, DestState(
                dr=rd.dest_states[pos].dr, tree=bt.tree(i), weights=w2d[i]
            )
    else:
        for pos in positions:
            dr = rd.dest_states[pos].dr
            tree = compute_tree(dr, node_secure_new, breaks_new)
            yield pos, DestState(
                dr=dr, tree=tree, weights=subtree_weights(dr, tree, node_weights)
            )


def _candidate_positions(
    cache: RoutingCache,
    rd: RoundData,
    isp: int,
    flips: dict[int, bool],
    turning_on: bool,
    model: UtilityModel,
) -> np.ndarray:
    """Secure-destination positions where the flip could change routing."""
    secure_pos = rd.secure_dest_positions
    if not len(secure_pos):
        return secure_pos
    flip_nodes = list(flips)
    if turning_on:
        # a flipped node can only start influencing SecP decisions if it
        # can acquire a secure chosen path, i.e. has a secure candidate
        possible = rd.any_sec_matrix[np.ix_(secure_pos, flip_nodes)].any(axis=1)
    else:
        # symmetric: it must currently have a secure chosen path to lose
        possible = rd.sec_matrix[np.ix_(secure_pos, flip_nodes)].any(axis=1)
    positions = secure_pos[possible]
    if model is UtilityModel.OUTGOING and len(positions):
        # only destinations n reaches via a customer edge contribute
        via_customer = cache.cls_matrix[positions, isp] == _CUSTOMER
        positions = positions[via_customer]
    return positions


def _incremental_delta(
    ds: DestState,
    node_secure_new: np.ndarray,
    breaks_new: np.ndarray,
    flips: dict[int, bool],
    isp: int,
    model: UtilityModel,
    node_weights: np.ndarray,
) -> float:
    """Exact utility delta for one destination via local propagation."""
    dr = ds.dr
    tree = ds.tree
    old_choice = tree.choice
    old_secure = tree.secure
    lengths = dr.lengths
    dest = dr.dest

    changed_sec: dict[int, bool] = {}
    changed_choice: dict[int, int] = {}
    pending: dict[int, set[int]] = {}

    for node in flips:
        if node == dest or dr.row_of[node] < 0:
            continue
        pending.setdefault(int(lengths[node]), set()).add(node)
    if not pending:
        return 0.0

    level = min(pending)
    max_level = max(pending)
    while level <= max_level:
        nodes = pending.pop(level, None)
        if nodes:
            for u in nodes:
                new_choice, new_sec = _recompute_node(
                    dr, u, old_secure, changed_sec, node_secure_new, breaks_new
                )
                if new_choice != old_choice[u]:
                    changed_choice[u] = new_choice
                if new_sec != bool(old_secure[u]):
                    changed_sec[u] = new_sec
                    for dep in dr.dependents_of(u):
                        dep_level = int(lengths[dep])
                        pending.setdefault(dep_level, set()).add(int(dep))
                        if dep_level > max_level:
                            max_level = dep_level
        level += 1

    if not changed_choice:
        return 0.0

    # Sources whose path changed = old subtrees of moved nodes.
    affected = _collect_old_subtrees(ds, list(changed_choice))

    if model is UtilityModel.OUTGOING:
        return _outgoing_walk_delta(ds, changed_choice, affected, isp, node_weights)
    return _incoming_walk_delta(ds, changed_choice, affected, isp, node_weights)


def _recompute_node(
    dr: DestRouting,
    u: int,
    old_secure: np.ndarray,
    changed_sec: dict[int, bool],
    node_secure_new: np.ndarray,
    breaks_new: np.ndarray,
) -> tuple[int, bool]:
    """Re-run the tiebreak of node ``u`` with patched candidate security."""
    cands = dr.tiebreak_set(u)
    csec = old_secure[cands].copy()
    for k, c in enumerate(cands):
        override = changed_sec.get(int(c))
        if override is not None:
            csec[k] = override
    usec = bool(node_secure_new[u])
    use_sec = usec and bool(breaks_new[u]) and bool(csec.any())

    row = int(dr.row_of[u])
    lo, hi = int(dr.indptr[row]), int(dr.indptr[row + 1])
    keys = dr.tie_keys()[lo:hi]  # state-independent, precomputed
    if use_sec:
        keys = np.where(csec, keys, _BLOCKED)
    best = int(np.argmin(keys))
    return int(cands[best]), usec and bool(csec[best])


def _collect_old_subtrees(ds: DestState, moved: list[int]) -> list[int]:
    """Moved nodes plus every node in their *old* routing subtrees."""
    indptr, idx = ds.children()
    seen: set[int] = set()
    stack = list(moved)
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        stack.extend(int(c) for c in idx[indptr[v]:indptr[v + 1]])
    return list(seen)


def _outgoing_walk_delta(
    ds: DestState,
    changed_choice: dict[int, int],
    affected: list[int],
    isp: int,
    node_weights: np.ndarray,
) -> float:
    """Sum of w_i over sources whose membership 'routes through isp' changed."""
    old_choice = ds.tree.choice
    dest = ds.dr.dest
    delta = 0.0
    for i in affected:
        if i == isp or i == dest:
            continue
        old_hit = _walks_through(old_choice, None, i, isp, dest)
        new_hit = _walks_through(old_choice, changed_choice, i, isp, dest)
        if old_hit != new_hit:
            delta += node_weights[i] if new_hit else -node_weights[i]
    return float(delta)


def _incoming_walk_delta(
    ds: DestState,
    changed_choice: dict[int, int],
    affected: list[int],
    isp: int,
    node_weights: np.ndarray,
) -> float:
    """Like the outgoing walk, but membership requires entering ``isp``
    over a customer edge (predecessor's route class is PROVIDER)."""
    old_choice = ds.tree.choice
    cls = ds.dr.cls
    dest = ds.dr.dest
    delta = 0.0
    for i in affected:
        if i == isp or i == dest:
            continue
        old_hit = _enters_via_customer(old_choice, None, i, isp, dest, cls)
        new_hit = _enters_via_customer(old_choice, changed_choice, i, isp, dest, cls)
        if old_hit != new_hit:
            delta += node_weights[i] if new_hit else -node_weights[i]
    return float(delta)


def _walks_through(
    choice: np.ndarray, overrides: dict[int, int] | None, source: int, target: int, dest: int
) -> bool:
    node = source
    while node != dest:
        node = overrides.get(node, int(choice[node])) if overrides else int(choice[node])
        if node == target:
            return True
        if node < 0:  # pragma: no cover - unreachable sources are not affected
            return False
    return False


def _enters_via_customer(
    choice: np.ndarray,
    overrides: dict[int, int] | None,
    source: int,
    target: int,
    dest: int,
    cls: np.ndarray,
) -> bool:
    node = source
    while node != dest:
        nxt = overrides.get(node, int(choice[node])) if overrides else int(choice[node])
        if nxt == target:
            # traffic arrives at `target` from `node`; it is revenue
            # traffic iff `node` reaches `target` as its provider
            return cls[node] == _PROVIDER
        if nxt < 0:  # pragma: no cover
            return False
        node = nxt
    return False


def per_destination_turn_off_gains(
    cache: RoutingCache,
    deriver: StateDeriver,
    rd: RoundData,
    isp: int,
) -> dict[int, float]:
    """§7.3: incoming-utility gain of disabling S*BGP per destination.

    The paper observes that an ISP can turn S*BGP off for a *single
    destination* (refusing to propagate S*BGP announcements for it) and
    finds that at least 10% of ISPs have a state where some destination
    makes that profitable.  Returns ``{destination: gain}`` for every
    destination with a strictly positive incoming-utility gain if
    ``isp`` stopped announcing secure routes for it.

    Per-destination turn-off does not orphan the ISP's stubs (the ISP
    still runs S*BGP; it just downgrades announcements for one
    destination), so only the ISP's own flag flips here.
    """
    flips = {isp: False}
    node_secure_new = rd.node_secure.copy()
    node_secure_new[isp] = False
    breaks_new = deriver.breaks_ties(node_secure_new)
    w = cache.graph.weights

    gains: dict[int, float] = {}
    secure_pos = rd.secure_dest_positions
    if not len(secure_pos):
        return gains
    # only destinations where isp currently has a secure chosen path can
    # react to the downgrade (valid under every policy: with no secure
    # chosen path, isp's selection and its announcements' security are
    # already what the downgrade would make them)
    has_secure = rd.sec_matrix[secure_pos, isp]
    candidates = [
        int(pos) for pos in secure_pos[has_secure]
        if cache.destinations[pos] != isp
    ]
    if not candidates:
        return gains
    if cache.policy.state_dependent:
        # incremental propagation is tiebreak-only; rebuild each
        # candidate destination's structure under the downgraded state
        routings = cache.policy.build_many(
            cache.graph,
            [cache.destinations[p] for p in candidates],
            cache.compiled,
            node_secure=node_secure_new,
            breaks_ties=breaks_new,
        )
        for pos, dr_new in zip(candidates, routings):
            tree = compute_tree(dr_new, node_secure_new, breaks_new)
            new_ds = DestState(
                dr=dr_new,
                tree=tree,
                weights=subtree_weights(dr_new, tree, w),
            )
            delta = _contribution(
                new_ds, isp, w, UtilityModel.INCOMING
            ) - _contribution(rd.dest_states[pos], isp, w, UtilityModel.INCOMING)
            if delta > 0:
                gains[cache.destinations[pos]] = delta
        return gains
    for pos in candidates:
        dest = cache.destinations[pos]
        delta = _incremental_delta(
            rd.dest_states[pos], node_secure_new, breaks_new, flips, isp,
            UtilityModel.INCOMING, w,
        )
        if delta > 0:
            gains[dest] = delta
    return gains
