"""Deployment oscillation: the CHICKEN construction (App. F / K.5).

The paper proves that under the incoming utility model the deployment
process need not terminate (Theorem 7.1; deciding termination is
PSPACE-complete).  The engine of that proof is the CHICKEN gadget
(Figure 21): two strategic ISPs, 10 and 20, whose incoming-utility
bi-matrix is the game of chicken,

    ============  ==========  ==========
    (u10, u20)      20 ON       20 OFF
    ============  ==========  ==========
    10 ON         (m+e, e)    (2m+e, m)
    10 OFF        (2m, m+e)   (2m, m)
    ============  ==========  ==========

so that from (OFF, OFF) both want ON, and from (ON, ON) both want OFF.
Under simultaneous myopic best response the pair cycles forever:
(OFF,OFF) -> (ON,ON) -> (OFF,OFF) -> ...

This module reconstructs that gadget on a concrete AS graph.  The
paper's construction fixes tie-breaking "in favor of the lowest AS
number"; our engine uses the hash tie-break of Appendix A, so the
builder searches node-insertion orders until the four required hash
orderings hold (they are satisfiable by ~1/16 of random orders).
"""

from __future__ import annotations

import dataclasses
import random

from repro.routing.policy import tie_hash
from repro.topology.graph import ASGraph


@dataclasses.dataclass(frozen=True)
class ChickenNetwork:
    """The Figure-21 chicken gadget, instantiated.

    ``node10`` / ``node20`` are the strategic ISPs; ``fixed_on`` are
    the scaffold ASes pinned secure (early adopters), ``fixed_off``
    the scaffold ASes that must stay insecure (excluded from play via
    the player restriction).
    """

    graph: ASGraph
    node10: int
    node20: int
    fixed_on: tuple[int, ...]
    fixed_off: tuple[int, ...]
    local1: int
    local2: int
    cross1: int
    cross2: int
    d1: int
    d2: int
    m: float
    eps: float

    @property
    def players(self) -> tuple[int, int]:
        return (self.node10, self.node20)


# symbolic node names used during construction
_NAMES = [
    "n10", "n20", "n1000", "n2000", "n6", "n3",
    "n1", "n4", "n2", "n5",
    "d1", "d2", "local1", "local2", "cross1", "cross2",
]


def _constraints_hold(index: dict[str, int]) -> bool:
    """The four tie-break orderings the construction needs.

    C1/C2: secure Local trees must prefer the strategic node over the
    always-secure alternative when both routes are secure;
    C3/C4: insecure Cross traffic must fall back to the fixed-OFF
    route, not the strategic one.
    """
    h = tie_hash
    return (
        h(index["local1"], index["n10"]) < h(index["local1"], index["n1000"])
        and h(index["local2"], index["n20"]) < h(index["local2"], index["n2000"])
        and h(index["cross1"], index["n1"]) < h(index["cross1"], index["n10"])
        and h(index["cross2"], index["n2"]) < h(index["cross2"], index["n3"])
    )


def build_chicken(m: float = 50.0, eps: float = 1.0, max_tries: int = 10_000) -> ChickenNetwork:
    """Construct the chicken gadget (``m >> eps``, per Lemma K.4)."""
    if m <= 2 * eps:
        raise ValueError(f"need m >> eps for the chicken payoffs, got m={m}, eps={eps}")

    rng = random.Random(2011)
    order = list(_NAMES)
    for attempt in range(max_tries):
        index = {name: pos for pos, name in enumerate(order)}
        if _constraints_hold(index):
            break
        rng.shuffle(order)
    else:  # pragma: no cover - probabilistically unreachable
        raise RuntimeError("could not satisfy tie-break constraints")

    # AS numbers: 101 + insertion position keeps them readable.
    asn = {name: 101 + pos for pos, name in enumerate(order)}
    graph = ASGraph()
    for name in order:
        graph.add_as(asn[name])

    def cp_edge(provider: str, customer: str) -> None:
        graph.add_customer_provider(provider=asn[provider], customer=asn[customer])

    def peering(a: str, b: str) -> None:
        graph.add_peering(asn[a], asn[b])

    # strategic spine: 20 is a provider of 10 (the gadget is asymmetric)
    cp_edge("n20", "n10")
    # destinations and local trees (always simplex-secure via 1000/2000)
    cp_edge("n10", "d1")
    cp_edge("n1000", "d1")
    cp_edge("n20", "d2")
    cp_edge("n2000", "d2")
    cp_edge("n10", "local1")
    cp_edge("n1000", "local1")
    cp_edge("n20", "local2")
    cp_edge("n2000", "local2")
    # Cross1 -> d2: secure route (cross1, 10, 6, 20, d2), fallback
    # (cross1, 1, 4, 20, d2)
    peering("n6", "n10")
    cp_edge("n6", "n20")
    cp_edge("n10", "cross1")
    cp_edge("n1", "cross1")
    cp_edge("n4", "n1")
    cp_edge("n20", "n4")
    # Cross2 -> d1: secure route (cross2, 3, 20, 10, d1), fallback
    # (cross2, 2, 5, 10, d1)
    peering("n3", "n20")
    cp_edge("n3", "cross2")
    cp_edge("n2", "cross2")
    cp_edge("n5", "n2")
    cp_edge("n10", "n5")

    graph.validate()
    graph.set_weight(asn["local1"], eps)
    graph.set_weight(asn["local2"], eps)
    graph.set_weight(asn["cross1"], m)
    graph.set_weight(asn["cross2"], 2 * m)

    return ChickenNetwork(
        graph=graph,
        node10=asn["n10"],
        node20=asn["n20"],
        fixed_on=(asn["n3"], asn["n6"], asn["n1000"], asn["n2000"]),
        fixed_off=(asn["n1"], asn["n2"], asn["n4"], asn["n5"]),
        local1=asn["local1"],
        local2=asn["local2"],
        cross1=asn["cross1"],
        cross2=asn["cross2"],
        d1=asn["d1"],
        d2=asn["d2"],
        m=m,
        eps=eps,
    )
