"""Worker-side telemetry capture for the process engine.

With the ``fork`` start method a child inherits the parent's active
registry *object* — but mutations to the copy never reach the parent.
The flow is therefore explicit: the child swaps in a fresh registry for
the duration of its partition, snapshots it, and ships the snapshot
back alongside its results; the parent folds every worker snapshot into
its own registry (counters sum, histograms add bucket-wise).  With
``spawn`` the child re-imports and sees the no-op default, so capture
yields ``None`` and the engine ships nothing — degraded visibility,
never wrong numbers.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)

__all__ = ["start_capture", "finish_capture", "merge_worker_snapshot"]


def start_capture() -> MetricsRegistry | None:
    """In a worker: install a fresh registry if telemetry is enabled.

    Returns the fresh registry (pass it to :func:`finish_capture`), or
    None when telemetry is disabled — the hot path then stays no-op.
    """
    if not get_registry().enabled:
        return None
    registry = MetricsRegistry()
    set_registry(registry)
    return registry


def finish_capture(registry: MetricsRegistry | None) -> dict | None:
    """Snapshot and uninstall a :func:`start_capture` registry."""
    if registry is None:
        return None
    set_registry(None)
    return registry.snapshot()


def merge_worker_snapshot(snapshot: dict | None) -> None:
    """In the parent: fold a shipped worker snapshot into the active registry."""
    if snapshot:
        get_registry().merge_snapshot(snapshot)
