#!/usr/bin/env python
"""End-to-end smoke test of the ``sbgp-sim serve`` daemon.

Launches the real daemon as a subprocess on a throwaway store, drives
the full client lifecycle over HTTP — submit, poll, stream events,
fetch the result — then submits an overlapping second job and verifies
the result cache actually served it (``service.cache.*`` counters in
``/metrics``), and shuts the daemon down with SIGTERM.

Exit code 0 on success; any failure prints the reason and exits 1.
Used by the non-blocking ``service-smoke`` CI job and runnable locally::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

SPEC_FIRST = {
    "n": 120, "seed": 11, "x": 0.10,
    "thetas": [0.0, 0.05], "adopter_sets": ["none", "top-5"],
}
SPEC_SECOND = {**SPEC_FIRST, "thetas": [0.0, 0.05, 0.30]}


def request(base: str, path: str, method: str = "GET", payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def wait_for_endpoint(store: Path, proc: subprocess.Popen, timeout: float = 60.0) -> str:
    endpoint = store / "endpoint.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early: {proc.stderr.read().decode()}")
        if endpoint.exists():
            try:
                return json.loads(endpoint.read_text())["url"]
            except (json.JSONDecodeError, KeyError):
                pass  # mid-write
        time.sleep(0.1)
    raise SystemExit("daemon never published endpoint.json")


def wait_for_done(base: str, job_id: str, timeout: float = 300.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = request(base, f"/v1/jobs/{job_id}")
        assert status == 200, body
        job = json.loads(body)
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.25)
    raise SystemExit(f"job {job_id} did not finish within {timeout}s")


def metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="sbgp-service-smoke-") as tmp:
        store = Path(tmp) / "store"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--store", str(store), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            base = wait_for_endpoint(store, proc)
            print(f"daemon up at {base}")

            status, body = request(base, "/healthz")
            assert status == 200, f"healthz: {status} {body}"

            status, body = request(base, "/v1/jobs", "POST", SPEC_FIRST)
            assert status == 202, f"submit: {status} {body}"
            first = json.loads(body)
            done = wait_for_done(base, first["id"])
            assert done["state"] == "done", f"first job: {done}"
            print(f"job {first['id']} done "
                  f"({done['progress']['done']}/{done['progress']['total']} cells)")

            status, body = request(base, f"/v1/jobs/{first['id']}/events")
            assert status == 200 and body.strip(), "events stream empty"

            status, body = request(base, f"/v1/jobs/{first['id']}/result")
            assert status == 200, f"result: {status}"
            n_cells = len(json.loads(body)["cells"])
            assert n_cells == 4, f"expected 4 cells, got {n_cells}"

            # overlapping second job: the whole point of the service
            status, body = request(base, "/v1/jobs", "POST", SPEC_SECOND)
            assert status == 202, f"second submit: {status} {body}"
            second = json.loads(body)
            done2 = wait_for_done(base, second["id"])
            assert done2["state"] == "done", f"second job: {done2}"

            status, text = request(base, "/metrics")
            assert status == 200
            cell_hits = metric(text, "repro_service_cache_cell_hits_total")
            arena_hits = metric(text, "repro_service_cache_arena_hits_total")
            assert cell_hits >= 4, f"expected >=4 cell-cache hits, got {cell_hits}"
            assert arena_hits >= 1, f"expected >=1 arena-cache hit, got {arena_hits}"
            print(f"cache served the overlap: cell_hits={cell_hits:g} "
                  f"arena_hits={arena_hits:g}")
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("daemon ignored SIGTERM")
        assert proc.returncode == 0, f"daemon exit code {proc.returncode}"
        assert (store / "metrics.json").exists(), "shutdown did not flush metrics"
        print("graceful shutdown ok; service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
