"""Fig. 12b: the CP-vs-Tier1 comparison across graph variants."""

from __future__ import annotations

from repro.experiments.cp_vs_tier1 import run_graph_comparison


def test_graph_comparison_covers_both_graphs():
    out = run_graph_comparison(n=60, seed=7, thetas=(0.0,), workers=1)
    assert set(out) == {False, True}
    for augmented, cells in out.items():
        assert cells, "comparison produced no cells"
        assert all(c.augmented is augmented for c in cells)
        assert all(0.0 <= c.fraction_secure_ases <= 1.0 for c in cells)
