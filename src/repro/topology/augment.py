"""Graph augmentation for content-provider connectivity (Appendix D).

Published AS-level topologies have poor visibility into CP peering at
the edge, so the paper builds an *augmented* graph:

1. remove the CPs' (acquisition-artifact) customer ASes, and
2. randomly peer each CP with ASes present at IXPs until the CP's mean
   path length to all destinations drops to ~2.1-2.2 hops (Table 3),
   at which point CP degrees rival the largest Tier-1s (Table 4).

:func:`augment_cp_peering` reproduces that procedure on any graph.
"""

from __future__ import annotations

import dataclasses
import random

from repro.topology.graph import ASGraph


@dataclasses.dataclass
class AugmentationReport:
    """What the augmentation changed, per content provider."""

    added_peerings: dict[int, int]
    removed_customers: dict[int, list[int]]
    mean_path_length: dict[int, float]


def mean_cp_path_length(graph: ASGraph, cp_asn: int) -> float:
    """Mean policy-compliant path length from ``cp_asn`` to all reachable ASes.

    Uses the routing model of Appendix A; unreachable destinations are
    excluded (mirroring the Knodes-style measurement the paper compares
    against).
    """
    from repro.routing.tree import route_classes_and_lengths

    src = graph.index(cp_asn)
    total = 0.0
    count = 0
    for dest in range(graph.n):
        if dest == src:
            continue
        info = route_classes_and_lengths(graph, dest)
        length = info.lengths[src]
        if length >= 0:
            total += length
            count += 1
    return total / count if count else float("inf")


def _mean_path_lengths_sampled(
    graph: ASGraph, cp_indices: list[int], sample: list[int]
) -> dict[int, float]:
    """Mean path length of each CP over a sample of destinations."""
    from repro.routing.tree import route_classes_and_lengths

    totals = {i: 0.0 for i in cp_indices}
    counts = {i: 0 for i in cp_indices}
    for dest in sample:
        info = route_classes_and_lengths(graph, dest)
        for i in cp_indices:
            if i == dest:
                continue
            if info.lengths[i] >= 0:
                totals[i] += info.lengths[i]
                counts[i] += 1
    return {i: (totals[i] / counts[i] if counts[i] else float("inf")) for i in cp_indices}


def augment_cp_peering(
    graph: ASGraph,
    ixp_member_asns: list[int],
    target_mean_path_length: float = 2.15,
    remove_cp_customers: bool = True,
    max_new_peerings_per_cp: int | None = None,
    sample_destinations: int = 400,
    seed: int = 2011,
) -> AugmentationReport:
    """Augment ``graph`` in place with CP->IXP-member peering edges.

    Peerings are added to each content provider, drawn uniformly from
    ``ixp_member_asns``, until the CP's mean path length (estimated over
    ``sample_destinations`` sampled destinations) reaches
    ``target_mean_path_length`` or the candidate pool is exhausted.

    Returns an :class:`AugmentationReport`.
    """
    rng = random.Random(seed)
    cps = sorted(graph.cp_asns & set(graph.asns))
    removed: dict[int, list[int]] = {cp: [] for cp in cps}

    if remove_cp_customers:
        for cp in cps:
            for customer in list(graph.customers_of(cp)):
                graph.remove_edge(cp, customer)
                removed[cp].append(customer)

    n = graph.n
    sample_size = min(sample_destinations, n)
    sample = rng.sample(range(n), sample_size)
    cp_indices = [graph.index(cp) for cp in cps]

    added = {cp: 0 for cp in cps}
    batch = max(8, len(ixp_member_asns) // 10)
    candidates = {cp: [a for a in ixp_member_asns if a != cp] for cp in cps}
    for pool in candidates.values():
        rng.shuffle(pool)

    means = _mean_path_lengths_sampled(graph, cp_indices, sample)
    for _ in range(200):  # hard stop; each pass adds `batch` edges per CP
        progressed = False
        for cp, idx in zip(cps, cp_indices):
            if means[idx] <= target_mean_path_length:
                continue
            pool = candidates[cp]
            limit = max_new_peerings_per_cp or len(ixp_member_asns)
            added_this_pass = 0
            while pool and added[cp] < limit and added_this_pass < batch:
                other = pool.pop()
                if graph.has_edge(cp, other):
                    continue
                graph.add_peering(cp, other)
                added[cp] += 1
                added_this_pass += 1
                progressed = True
        if not progressed:
            break
        means = _mean_path_lengths_sampled(graph, cp_indices, sample)
        if all(means[idx] <= target_mean_path_length for idx in cp_indices):
            break

    return AugmentationReport(
        added_peerings=added,
        removed_customers=removed,
        mean_path_length={cp: means[idx] for cp, idx in zip(cps, cp_indices)},
    )
