"""The Fig-13 buyer's-remorse gadget: incentive to disable S*BGP."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.gadgets.buyers_remorse import build_buyers_remorse
from repro.routing.cache import RoutingCache


@pytest.fixture(scope="module")
def setting():
    net = build_buyers_remorse()
    cache = RoutingCache(net.graph)
    # Fig. 13 assumes simplex stubs do not break ties
    deriver = StateDeriver(net.graph, stub_breaks_ties=False, compiled=cache.compiled)
    g = net.graph
    ea = frozenset([g.index(net.cp), g.index(net.upstream)])
    state = DeploymentState.initial(ea).with_flips(turn_on=[g.index(net.focal)])
    rd = compute_round_data(cache, deriver, state, UtilityModel.INCOMING)
    return net, cache, deriver, state, rd


class TestRemorse:
    def test_turning_off_raises_incoming_utility(self, setting):
        net, cache, deriver, state, rd = setting
        focal = net.graph.index(net.focal)
        proj = project_flip(
            cache, deriver, rd, focal, turning_on=False, model=UtilityModel.INCOMING
        )
        assert proj.utility > float(rd.utilities[focal])

    def test_gain_scales_with_stub_count(self, setting):
        """Each stub destination moves ~w_cp of traffic onto customer
        edges, matching the paper's per-destination account."""
        net, cache, deriver, state, rd = setting
        focal = net.graph.index(net.focal)
        proj = project_flip(
            cache, deriver, rd, focal, turning_on=False, model=UtilityModel.INCOMING
        )
        gain = proj.utility - float(rd.utilities[focal])
        assert gain == pytest.approx(len(net.stubs) * 821.0, rel=0.1)

    def test_no_remorse_under_outgoing(self, setting):
        """Theorem 6.2 sanity: the same ISP has no outgoing incentive."""
        net, cache, deriver, state, _ = setting
        rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
        focal = net.graph.index(net.focal)
        proj = project_flip(
            cache, deriver, rd, focal, turning_on=False, model=UtilityModel.OUTGOING
        )
        assert proj.utility <= float(rd.utilities[focal]) + 1e-9

    def test_dynamics_actually_turn_off(self, setting):
        """Run the incoming-model game: the focal ISP disables S*BGP."""
        net, cache, deriver, state, rd = setting
        g = net.graph
        cfg = SimulationConfig(
            theta=0.0,
            utility_model=UtilityModel.INCOMING,
            stub_breaks_ties=False,
            max_rounds=10,
        )
        sim = DeploymentSimulation(
            g, [net.cp, net.upstream], cfg, cache, player_asns=[net.focal]
        )
        sim.state = sim.state.with_flips(turn_on=[g.index(net.focal)])
        result = sim.run()
        assert g.index(net.focal) in result.rounds[0].turned_off
        assert not result.final_node_secure[g.index(net.focal)]
