"""CLI smoke tests (fast, tiny graphs)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("case-study", "sweep", "tiebreak", "cp-vs-tier1",
                    "turnoff", "graph-stats"):
            args = parser.parse_args([cmd, "--n", "50"])
            assert args.command == cmd
            assert args.n == 50

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_graph_stats(self, capsys):
        assert main(["graph-stats", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_tiebreak(self, capsys):
        assert main(["tiebreak", "--n", "60"]) == 0
        assert "tiebreak" in capsys.readouterr().out

    def test_case_study(self, capsys):
        assert main(["case-study", "--n", "60", "--theta", "0.05"]) == 0
        assert "early adopters" in capsys.readouterr().out


class TestSweepResume:
    def test_journal_resume_and_out(self, capsys, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        out = tmp_path / "table.txt"
        assert main(["sweep", "--n", "60", "--journal", str(journal)]) == 0
        first = capsys.readouterr().out
        snapshot = journal.read_text()

        # a resumed run replays every cell and prints the same table
        assert main([
            "sweep", "--n", "60", "--journal", str(journal),
            "--resume", "--out", str(out),
        ]) == 0
        assert capsys.readouterr().out == first
        assert journal.read_text() == snapshot
        assert "Fig 8/9" in out.read_text()

    def test_existing_journal_requires_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--n", "60", "--journal", str(journal)]) == 0
        with pytest.raises(SystemExit, match="--resume"):
            main(["sweep", "--n", "60", "--journal", str(journal)])

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--journal"):
            main(["sweep", "--n", "60", "--resume"])
