"""Heterogeneous deployment thresholds (§8.2).

The paper sweeps one common theta but notes that inaccurate local
utility estimates can be folded into it ("if projected utility is off
by a factor of ±eps, model this with threshold theta ± eps.  ...
extensions might capture inaccurate estimates of projected utility by
randomizing theta").  These generators produce per-ISP threshold
arrays; :class:`~repro.core.dynamics.DeploymentSimulation` accepts them
via ``thresholds=``.
"""

from __future__ import annotations

import numpy as np

from repro.topology.graph import ASGraph


def uniform_thresholds(graph: ASGraph, theta: float) -> np.ndarray:
    """Every AS uses the same threshold (the paper's default)."""
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    return np.full(graph.n, theta, dtype=np.float64)


def lognormal_thresholds(
    graph: ASGraph, median_theta: float, sigma: float = 0.5, seed: int = 0
) -> np.ndarray:
    """Randomised thresholds with the given median (multiplicative noise).

    ``theta_i = median_theta * exp(sigma * Z_i)`` with standard-normal
    ``Z_i`` — the §8.2 "randomizing theta" extension; ``sigma`` is the
    estimate-uncertainty knob.
    """
    if median_theta < 0:
        raise ValueError(f"median_theta must be >= 0, got {median_theta}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    return median_theta * np.exp(sigma * rng.standard_normal(graph.n))


def degree_scaled_thresholds(
    graph: ASGraph, base_theta: float, exponent: float = 0.25
) -> np.ndarray:
    """Larger networks face proportionally larger deployment hurdles.

    ``theta_i = base_theta * (degree_i / median_degree) ** exponent``.
    The paper's multiplicative rule already scales *costs* with transit
    volume; this additionally scales the required *margin*, modelling
    organisational inertia at big ISPs.
    """
    if base_theta < 0:
        raise ValueError(f"base_theta must be >= 0, got {base_theta}")
    degrees = np.array(
        [max(1, graph.degree_of_index(i)) for i in range(graph.n)], dtype=np.float64
    )
    median = float(np.median(degrees))
    return base_theta * (degrees / max(1.0, median)) ** exponent
