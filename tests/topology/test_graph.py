"""Unit tests for the annotated AS graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.errors import (
    DuplicateASError,
    DuplicateEdgeError,
    RelationshipCycleError,
    UnknownASError,
)
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole, Relationship


def build_triangle() -> ASGraph:
    g = ASGraph()
    for asn in (1, 2, 3):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=1, customer=3)
    g.add_peering(2, 3)
    return g


class TestConstruction:
    def test_add_as_returns_dense_indices(self):
        g = ASGraph()
        assert g.add_as(100) == 0
        assert g.add_as(7) == 1
        assert g.index(100) == 0
        assert g.asn(1) == 7

    def test_duplicate_as_rejected(self):
        g = ASGraph()
        g.add_as(1)
        with pytest.raises(DuplicateASError):
            g.add_as(1)

    def test_ensure_as_is_idempotent(self):
        g = ASGraph()
        assert g.ensure_as(5) == g.ensure_as(5) == 0
        assert g.n == 1

    def test_edges_require_known_ases(self):
        g = ASGraph()
        g.add_as(1)
        with pytest.raises(UnknownASError):
            g.add_customer_provider(provider=1, customer=2)

    def test_duplicate_edge_rejected(self):
        g = build_triangle()
        with pytest.raises(DuplicateEdgeError):
            g.add_peering(1, 2)
        with pytest.raises(DuplicateEdgeError):
            g.add_customer_provider(provider=2, customer=1)

    def test_self_loop_rejected(self):
        g = ASGraph()
        g.add_as(1)
        with pytest.raises(DuplicateEdgeError):
            g.add_peering(1, 1)

    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert g.peers_of(2) == []
        g.add_peering(2, 3)  # can re-add after removal
        assert g.has_edge(2, 3)


class TestAccessors:
    def test_relationship_views(self):
        g = build_triangle()
        assert g.relationship(1, 2) is Relationship.CUSTOMER
        assert g.relationship(2, 1) is Relationship.PROVIDER
        assert g.relationship(2, 3) is Relationship.PEER
        with pytest.raises(KeyError):
            g.relationship(2, 2)

    def test_neighbor_lists(self):
        g = build_triangle()
        assert g.customers_of(1) == [2, 3]
        assert g.providers_of(2) == [1]
        assert g.peers_of(3) == [2]

    def test_degree(self):
        g = build_triangle()
        assert g.degree(1) == 2
        assert g.degree(2) == 2

    def test_edge_iteration_counts(self):
        g = build_triangle()
        edges = list(g.edges())
        assert len(edges) == 3
        assert g.num_customer_provider_edges() == 2
        assert g.num_peering_edges() == 1

    def test_contains_and_len(self):
        g = build_triangle()
        assert 1 in g and 9 not in g
        assert len(g) == 3


class TestRolesAndWeights:
    def test_role_classification(self):
        g = ASGraph(cp_asns=[3])
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=1, customer=3)
        assert g.role(1) is ASRole.ISP
        assert g.role(2) is ASRole.STUB
        assert g.role(3) is ASRole.CP

    def test_roles_recomputed_after_mutation(self):
        g = ASGraph()
        g.add_as(1)
        g.add_as(2)
        assert g.role(1) is ASRole.STUB
        g.add_customer_provider(provider=1, customer=2)
        assert g.role(1) is ASRole.ISP

    def test_weights_default_unit(self):
        g = build_triangle()
        assert np.allclose(g.weights, 1.0)

    def test_set_weight(self):
        g = build_triangle()
        g.set_weight(2, 5.5)
        assert g.weights[g.index(2)] == 5.5

    def test_negative_weight_rejected(self):
        g = build_triangle()
        with pytest.raises(ValueError):
            g.set_weight(2, -1.0)

    def test_set_content_providers(self):
        g = build_triangle()
        g.set_content_providers([2])
        assert g.role(2) is ASRole.CP


class TestValidation:
    def test_valid_graph_passes(self):
        build_triangle().validate()

    def test_provider_cycle_detected(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)
        g.add_customer_provider(provider=3, customer=1)
        with pytest.raises(RelationshipCycleError) as exc:
            g.validate()
        assert len(exc.value.cycle) >= 3

    def test_copy_is_independent(self):
        g = build_triangle()
        g2 = g.copy()
        g2.add_as(99)
        g2.add_customer_provider(provider=1, customer=99)
        assert 99 not in g
        assert g.degree(1) == 2
        assert g2.degree(1) == 3
