"""S*BGP protocol substrate: RPKI, S-BGP, soBGP, attacks, propagation."""

from repro.protocol.attacks import (
    AttackOutcome,
    evaluate_attack,
    forge_origin_hijack,
    forge_path_announcement,
    forge_signed_false_path,
    sign_attacker_hop,
)
from repro.protocol.messages import Announcement, RouteAttestation
from repro.protocol.router import ProtocolNetwork, RibEntry, SecurityLevel, SecurityMode
from repro.protocol.rpki import ROA, Prefix, RPKI, RPKIError, UnknownKeyError
from repro.protocol.sbgp import (
    forward,
    originate,
    sign_hop,
    validate_path,
    validated_signers,
)
from repro.protocol.sobgp import LinkCertificate, TopologyDatabase

__all__ = [
    "Announcement",
    "AttackOutcome",
    "LinkCertificate",
    "Prefix",
    "ProtocolNetwork",
    "ROA",
    "RPKI",
    "RPKIError",
    "RibEntry",
    "RouteAttestation",
    "SecurityLevel",
    "SecurityMode",
    "TopologyDatabase",
    "UnknownKeyError",
    "evaluate_attack",
    "forge_origin_hijack",
    "forge_path_announcement",
    "forge_signed_false_path",
    "forward",
    "originate",
    "sign_attacker_hop",
    "sign_hop",
    "validate_path",
    "validated_signers",
]
