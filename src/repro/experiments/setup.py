"""Shared experiment environment: graph, traffic, adopter sets, cache.

Every benchmark and example builds one of these.  The default scale is
far below the paper's 36,964 ASes (pure Python vs a 200-node cluster);
DESIGN.md documents why the structural statistics — degree skew, 85%
stubs, tiny tiebreak sets — are what carry the results, and those are
preserved at this scale.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.adopters import content_providers, cps_plus_top_isps, random_isps, top_degree_isps
from repro.parallel.engine import parallel_warm_cache
from repro.routing.arena import RoutingArena
from repro.routing.cache import RoutingCache
from repro.runtime.guard import current_guard
from repro.topology.augment import augment_cp_peering
from repro.topology.generator import GeneratedTopology, TopologyConfig, generate_topology
from repro.topology.graph import ASGraph
from repro.topology.traffic import apply_traffic_model


@dataclasses.dataclass
class ExperimentEnv:
    """A ready-to-simulate topology with cache and adopter sets."""

    topology: GeneratedTopology
    graph: ASGraph
    cache: RoutingCache
    x: float
    augmented: bool

    @property
    def tier1_asns(self) -> list[int]:
        return self.topology.tier1_asns

    @property
    def cp_asns(self) -> list[int]:
        return self.topology.cp_asns

    def adopter_sets(self, random_seed: int = 7) -> dict[str, list[int]]:
        """The Fig-8 menu of early-adopter sets, scaled to the graph.

        The paper uses {none, top 5..200 by degree, 5 CPs, CPs+top5,
        200 random}; set sizes scale with the ISP population here.
        """
        graph = self.graph
        num_isps = max(1, len(graph.isp_indices))
        big = max(10, num_isps // 3)
        return {
            "none": [],
            "top-5": top_degree_isps(graph, 5),
            "top-10": top_degree_isps(graph, 10),
            f"top-{big}": top_degree_isps(graph, big),
            "5-cps": content_providers(graph),
            "cps+top-5": cps_plus_top_isps(graph, 5),
            f"random-{big}": random_isps(graph, big, seed=random_seed),
        }

    def case_study_adopters(self) -> list[int]:
        """§5's set: the five CPs plus the top five Tier-1s by degree."""
        return cps_plus_top_isps(self.graph, 5)


def build_environment(
    n: int = 1000,
    seed: int = 2011,
    x: float = 0.10,
    augmented: bool = False,
    warm: bool = True,
    workers: int = 1,
    config: TopologyConfig | None = None,
    sample_destinations: int | None = None,
    policy: str = "security_3rd",
    backend: str | None = None,
) -> ExperimentEnv:
    """Generate a topology, apply the traffic model, and warm the cache.

    ``x`` is the CP traffic fraction (§3.1); ``augmented=True`` applies
    the Appendix-D CP-peering augmentation before caching.  ``policy``
    names the routing-policy registry entry the cache is bound to (see
    :func:`repro.routing.policy.available_policies`).

    ``backend`` names the kernel backend the cache dispatches the
    batched routing kernels through (see
    :mod:`repro.routing.backends`); ``None`` defers to the
    ``SBGP_KERNEL_BACKEND`` environment variable, then numpy.

    ``sample_destinations`` restricts the routing cache to a uniform
    sample of that many destinations: utilities (and hence decisions)
    become sampled estimators of the all-destination quantities, which
    is how runs scale beyond a few thousand ASes.  The paper instead
    refused to subsample ("we chose not to 'sample down'"); the
    estimator's fidelity at small N is measured in
    ``benchmarks/bench_kernel_dest_sampling.py`` so users can judge the
    trade-off the paper avoided.
    """
    topology = generate_topology(config, **({} if config else {"n": n, "seed": seed}))
    graph = topology.graph
    if augmented:
        augment_cp_peering(
            graph,
            topology.all_ixp_member_asns,
            seed=seed,
        )
    apply_traffic_model(graph, x)
    destinations = None
    if sample_destinations is not None and sample_destinations < graph.n:
        rng = random.Random(seed + 17)
        destinations = sorted(rng.sample(range(graph.n), sample_destinations))
    cache = RoutingCache(graph, destinations=destinations, policy=policy, backend=backend)
    if warm:
        guard = current_guard()
        estimate = RoutingArena.estimate_bytes(len(cache.destinations), graph.n)
        if not guard.fits_memory(estimate):
            # last ladder rung: skip the eager warm + arena entirely and
            # let trees build lazily per destination as rounds touch them
            guard.degrade(
                "lazy_warm",
                f"eager warm needs ~{estimate} bytes for the pooled arena, "
                "over the memory budget; deferring to lazy per-destination "
                "builds",
            )
        else:
            parallel_warm_cache(cache, workers=workers)
            cache.ensure_arena()  # pool the trees before the first round
    return ExperimentEnv(
        topology=topology, graph=graph, cache=cache, x=x, augmented=augmented
    )
