"""Attack library: the failures S*BGP exists to stop (§1, App. B).

Three canonical attacks, each paired with the mechanism that defeats it:

- **origin hijack** — announce someone else's prefix as your own;
  stopped by RPKI origin validation (ROAs).
- **path shortening / fabricated link** — announce a path through a
  link or AS that never sent it; stopped by S-BGP path validation or
  soBGP topology validation.
- **partially-secure preference** (Appendix B, Figure 15) — *not* an
  attack on S*BGP itself but on a tempting mis-ranking: preferring
  partially-secure paths over insecure ones lets an attacker dress up
  a false path with a few genuine signatures and beat a true-but-
  insecure route.  This is why the paper's proposal only prefers
  *fully* secure paths.
"""

from __future__ import annotations

import dataclasses

from repro.protocol.messages import Announcement
from repro.protocol.router import ProtocolNetwork, SecurityLevel
from repro.protocol.rpki import Prefix
from repro.protocol.sbgp import sign_hop


def forge_origin_hijack(attacker: int, prefix: Prefix) -> Announcement:
    """The attacker claims to originate ``prefix`` itself."""
    return Announcement(prefix=prefix, path=(attacker,))


def forge_path_announcement(
    attacker: int, fake_path: tuple[int, ...], prefix: Prefix
) -> Announcement:
    """The attacker claims a path through ASes that never announced it.

    ``fake_path`` must start with the attacker; no attestations from
    the spoofed ASes can be produced, so full validation fails.
    """
    if fake_path[0] != attacker:
        raise ValueError("fake path must start with the attacker")
    return Announcement(prefix=prefix, path=fake_path)


def forge_signed_false_path(
    network: ProtocolNetwork, attacker: int, fake_path: tuple[int, ...], prefix: Prefix
) -> Announcement:
    """Like :func:`forge_path_announcement` but the attacker signs *its
    own* hop, producing the partially-attested announcement Appendix B
    exploits (the attacker cannot forge the other hops' signatures)."""
    ann = forge_path_announcement(attacker, fake_path, prefix)
    network.rpki.register_as(attacker)
    # The attacker can sign for itself only; the chain stays broken at
    # the spoofed hops.  (next_as is filled per receiver during
    # propagation in real S-BGP; the simulator validates the first hop
    # against the actual receiver, so this lone signature verifies only
    # when addressed correctly — which is exactly what the attacker
    # wants for the neighbor it targets.)
    return ann


@dataclasses.dataclass(frozen=True)
class AttackOutcome:
    """Did the attacker capture the victim's traffic to the prefix?"""

    victim: int
    prefix: Prefix
    chosen_path: tuple[int, ...] | None
    attacker_on_path: bool
    security_level: SecurityLevel | None


def evaluate_attack(
    network: ProtocolNetwork, victim: int, attacker: int, prefix: Prefix
) -> AttackOutcome:
    """Converge the network and report whether ``victim`` routes to the
    attacker for ``prefix``."""
    network.converge()
    entry = network.route_of(victim, prefix)
    path = entry.path if entry else None
    return AttackOutcome(
        victim=victim,
        prefix=prefix,
        chosen_path=path,
        attacker_on_path=bool(path and attacker in path),
        security_level=entry.level if entry else None,
    )


def sign_attacker_hop(
    network: ProtocolNetwork,
    attacker: int,
    announcement: Announcement,
    receiver: int,
) -> Announcement:
    """Attach the attacker's own (genuine) signature for ``receiver``.

    Used to show that a single genuine signature on a false path is
    enough to out-rank honest insecure routes under the rejected
    partial-security preference.
    """
    att = sign_hop(
        network.rpki, attacker, announcement.prefix, announcement.path, receiver
    )
    return Announcement(
        prefix=announcement.prefix,
        path=announcement.path,
        attestations=announcement.attestations + (att,),
    )
