"""Figure 14: projected vs realised utility of adopters (§8.1).

Paper: despite simultaneous moves, projections are excellent — 80% of
ISPs overestimate by < 2%, 90% by < 6.7%.  Shape: the distribution of
projected/actual ratios concentrates tightly around 1.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.sweeps import run_sweep


def test_fig14_projection_accuracy(benchmark, env, capsys):
    sets = env.adopter_sets()
    chosen = {name: sets[name] for name in ("top-5", "cps+top-5", "5-cps")}

    cells = benchmark.pedantic(
        lambda: run_sweep(
            env, thetas=(0.0,), adopter_sets=chosen,
            collect_projection_accuracy=True,
        ),
        rounds=1, iterations=1,
    )
    rows = []
    all_ratios: list[float] = []
    for c in cells:
        ratios = np.asarray(c.projection_ratios)
        all_ratios.extend(c.projection_ratios)
        if len(ratios):
            rows.append([
                c.adopters, len(ratios),
                f"{np.median(ratios):.3f}",
                f"{np.percentile(ratios, 80):.3f}",
                f"{np.percentile(ratios, 90):.3f}",
            ])
    with capsys.disabled():
        print()
        print(format_table(
            ["adopters", "samples", "median", "p80", "p90"],
            rows, title="Fig 14: projected / realised utility (theta=0)",
        ))
        print("  paper: 80% of ISPs overestimate by <2%, 90% by <6.7%")

    arr = np.asarray(all_ratios)
    assert len(arr) > 10
    assert abs(np.median(arr) - 1.0) < 0.1
    assert np.percentile(arr, 80) < 1.5
