"""Cache of per-destination routing structures for a fixed graph.

Under state-independent policies (Observation C.1: SecP ranked last)
everything in :class:`DestRouting` is reusable across deployment
states, so a simulation computes it once per destination and keeps it
for every round and every projected state.  The cache also exposes the
dense class matrix (``cls_matrix[d, i]`` = route class of node ``i``
toward destination ``d``) that the projection engine uses to filter
destinations.

The cache is bound to one :class:`~repro.routing.policy.RoutingPolicy`
for its lifetime; the policy name travels with every structure it hands
out (``DestRouting.policy``, ``RoutingArena.policy``), and installing a
structure built under a different policy raises — mixed-policy reuse is
a silent-wrong-results bug, not a recoverable condition.  For
*state-dependent* policies (``security_1st`` / ``security_2nd``) the
structures are additionally keyed by the deployment state:
:meth:`RoutingCache.ensure_state` drops and rebuilds everything when
the ``(node_secure, breaks_ties)`` pair changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Callable

import numpy as np

from repro.routing import backends as kernel_backends
from repro.routing.arena import RoutingArena
from repro.routing.compiled import CompiledGraph
from repro.routing.policy import RoutingPolicy, get_policy
from repro.routing.tree import DestRouting
from repro.runtime.guard import current_guard
from repro.telemetry.metrics import get_registry
from repro.topology.graph import ASGraph

#: destinations warmed between deadline checks in the serial warm loop
_WARM_CHECK_STRIDE = 64


def state_digest(node_secure: np.ndarray, breaks_ties: np.ndarray) -> str:
    """Short stable digest of a deployment state (for cache/arena keys)."""
    h = hashlib.blake2b(digest_size=8)
    h.update(np.asarray(node_secure, dtype=bool).tobytes())
    h.update(np.asarray(breaks_ties, dtype=bool).tobytes())
    return h.hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Public accounting for one :class:`RoutingCache` instance.

    ``warm_seconds`` sums in-process tree-build time plus any parallel
    warm wall time noted via :meth:`RoutingCache.note_warm_time`;
    ``installs`` counts trees computed elsewhere (worker processes) and
    shipped in, whose per-tree build time lives in the workers'
    telemetry snapshots rather than here.  ``state_rebuilds`` counts
    full drop-and-rebuild cycles triggered by deployment-state changes
    (always 0 for state-independent policies); ``arena_bytes`` is the
    pooled arena's footprint (0 until one is built).
    """

    hits: int
    misses: int
    builds: int
    installs: int
    warm_seconds: float
    cached: int
    total: int
    policy: str = "security_3rd"
    state_rebuilds: int = 0
    arena_bytes: int = 0
    backend: str = "numpy"

    @property
    def cached_fraction(self) -> float:
        """Fraction of this cache's destinations already computed."""
        return self.cached / self.total if self.total else 1.0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (NaN-free: 0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class RoutingCache:
    """Lazily computed :class:`DestRouting` per destination.

    Parameters
    ----------
    graph:
        The (already final) AS graph.  Mutating the graph after creating
        a cache invalidates it; create a new cache instead.
    destinations:
        Restrict the cache to these destination indices (default: all).
        Experiments on large graphs may sample destinations; utilities
        are then computed over the sampled destination set only.
    policy:
        A :class:`~repro.routing.policy.RoutingPolicy` or registry name
        / alias (``"security_3rd"`` default; see
        :func:`repro.routing.policy.available_policies`).
    transform:
        Optional post-processor applied to each computed
        :class:`DestRouting` (e.g. the sticky-primary restriction of
        :func:`repro.routing.policy.restrict_to_primary` with a
        custom mask — the registered ``sticky_primaries`` policy covers
        the standard §8.3 configuration without this hook).
    backend:
        Kernel backend name for the batched tree/weight/fixpoint kernels
        (:mod:`repro.routing.backends`).  ``None`` resolves through the
        ``SBGP_KERNEL_BACKEND`` env var (default ``numpy``); an unusable
        compiled backend degrades to numpy via the resource guard's
        ``compiled_to_numpy`` rung.  Resolved once here, so every arena
        this cache builds or adopts runs on one backend.
    """

    def __init__(
        self,
        graph: ASGraph,
        destinations: list[int] | None = None,
        policy: str | RoutingPolicy = "security_3rd",
        transform: Callable[[DestRouting], DestRouting] | None = None,
        backend: str | None = None,
    ):
        self.policy = get_policy(policy)
        self.transform = transform
        self.backend_name = kernel_backends.resolve_backend(backend)
        self.graph = graph
        self.compiled = CompiledGraph.from_graph(graph)
        self.destinations = list(range(graph.n)) if destinations is None else list(destinations)
        self._dest_pos = {d: k for k, d in enumerate(self.destinations)}
        self._routing: dict[int, DestRouting] = {}
        self._arena: RoutingArena | None = None
        self._cls_matrix: np.ndarray | None = None
        # deployment state the structures were built under; only
        # meaningful for state-dependent policies (None = all-insecure)
        self._node_secure: np.ndarray | None = None
        self._breaks_ties: np.ndarray | None = None
        self._state_key: str | None = None
        if self.policy.state_dependent:
            # structures built before any ensure_state() call use the
            # all-insecure default; key it explicitly so round 0 of a
            # pre-warmed simulation is not a spurious rebuild
            empty = np.zeros(graph.n, dtype=bool)
            self._state_key = state_digest(empty, empty)
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._installs = 0
        self._state_rebuilds = 0
        self._warm_seconds = 0.0
        get_registry().gauge(f"routing.policy.active.{self.policy.name}").set(1)

    @property
    def n(self) -> int:
        """Number of nodes in the underlying graph."""
        return self.graph.n

    @property
    def policy_name(self) -> str:
        """Canonical registry name of this cache's policy."""
        return self.policy.name

    @property
    def state_key(self) -> str | None:
        """Digest of the deployment state the structures are built for.

        ``None`` for state-independent policies (one structure serves
        every state); for state-dependent policies this starts at the
        all-insecure digest and tracks :meth:`ensure_state`.
        """
        return self._state_key

    def current_state(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(node_secure, breaks_ties)`` the structures are built under.

        ``(None, None)`` means the all-insecure default (and is the
        permanent answer for state-independent policies).  Parallel
        warmers ship this to worker processes so remotely-built
        structures match the cache's state.
        """
        return self._node_secure, self._breaks_ties

    def _build(self, dests: list[int]) -> list[DestRouting]:
        """Build (and transform, and tag) structures for ``dests``."""
        routings = self.policy.build_many(
            self.graph,
            dests,
            self.compiled,
            node_secure=self._node_secure,
            breaks_ties=self._breaks_ties,
            backend=self.backend_name,
        )
        if self.transform is not None:
            routings = [self.transform(dr) for dr in routings]
            for dr in routings:
                dr.policy = self.policy.name
        return routings

    def dest_routing(self, dest: int) -> DestRouting:
        """The :class:`DestRouting` for ``dest`` (computed on first use)."""
        dr = self._routing.get(dest)
        registry = get_registry()
        if dr is None:
            self._misses += 1
            registry.counter("routing.cache.misses").inc()
            start = time.perf_counter()
            dr = self._build([dest])[0]
            elapsed = time.perf_counter() - start
            self._builds += 1
            self._warm_seconds += elapsed
            registry.counter("routing.tree_builds").inc()
            registry.histogram("routing.tree_build_seconds").observe(elapsed)
            self._routing[dest] = dr
        else:
            self._hits += 1
            registry.counter("routing.cache.hits").inc()
        return dr

    def warm(self) -> None:
        """Precompute every destination in ``destinations``.

        State-dependent policies warm in one batched fixpoint run (the
        Jacobi sweeps are shared across the whole destination chunk)
        instead of destination-by-destination.
        """
        pending = self.pending_destinations()
        if not pending:
            return
        guard = current_guard()
        if self.policy.state_dependent:
            # the batched fixpoint is all-or-nothing; check once up front
            guard.check_deadline("cache warm (batched fixpoint)")
            registry = get_registry()
            start = time.perf_counter()
            routings = self._build(pending)
            elapsed = time.perf_counter() - start
            for dest, dr in zip(pending, routings):
                self._routing[dest] = dr
            self._misses += len(pending)
            self._builds += len(pending)
            self._warm_seconds += elapsed
            registry.counter("routing.cache.misses").inc(len(pending))
            registry.counter("routing.tree_builds").inc(len(pending))
            registry.histogram("routing.tree_build_seconds").observe(elapsed)
        else:
            for k, dest in enumerate(pending):
                if k % _WARM_CHECK_STRIDE == 0:
                    # already-computed destinations stay cached, so an
                    # expired budget here resumes where warming stopped
                    guard.check_deadline("cache warm")
                self.dest_routing(dest)

    def ensure_state(
        self, node_secure: np.ndarray, breaks_ties: np.ndarray
    ) -> bool:
        """Make cached structures valid for this deployment state.

        No-op (returns False) for state-independent policies and when
        the state matches what is already cached.  Otherwise every
        structure — per-destination routings, the arena, the class
        matrix — is dropped and rebuilt under the new state; returns
        True.  Callers on the round loop invoke this before
        :meth:`ensure_arena`.
        """
        if not self.policy.state_dependent:
            return False
        key = state_digest(node_secure, breaks_ties)
        if key == self._state_key:
            return False
        self._node_secure = np.array(node_secure, dtype=bool)
        self._breaks_ties = np.array(breaks_ties, dtype=bool)
        self._state_key = key
        had_routings = bool(self._routing)
        had_arena = self._arena is not None
        self._routing.clear()
        self._arena = None
        self._cls_matrix = None
        if had_routings or had_arena:
            self._state_rebuilds += 1
            get_registry().counter("routing.cache.state_rebuilds").inc()
        if had_arena:
            self.ensure_arena()
        return True

    @property
    def arena(self) -> RoutingArena | None:
        """The pooled routing arena, if one has been built (else None)."""
        return self._arena

    def ensure_arena(self) -> RoutingArena:
        """Warm everything and pack it into a :class:`RoutingArena`.

        The cached per-destination :class:`DestRouting` objects are
        replaced by zero-copy views into the arena pools, so subsequent
        :meth:`dest_routing` lookups hand out pool-backed structures
        (with their tie-break keys precomputed) and the original
        fragmented arrays are released.  Idempotent after the first
        call; a shared arena installed via :meth:`install_arena` is
        reused as-is.
        """
        if self._arena is None:
            self.warm()
            arena = RoutingArena.build(
                self.graph.n,
                self.destinations,
                [self._routing[d] for d in self.destinations],
                policy=self.policy.name,
                state_key=self._state_key,
                backend=self.backend_name,
            )
            self._adopt_arena(arena)
        return self._arena

    def install_arena(self, arena: RoutingArena) -> None:
        """Adopt a pre-built arena (e.g. attached from shared memory).

        The arena's slot order must match this cache's ``destinations``
        and it must have been built under the same policy (and, for
        state-dependent policies, the same deployment state); every
        destination is then considered cached (counted as installs,
        like trees shipped in from parallel warm workers).
        """
        if list(arena.dest_ids) != list(self.destinations):
            raise ValueError("arena destinations do not match this cache")
        if arena.policy != self.policy.name:
            raise ValueError(
                f"arena was built under policy {arena.policy!r}; this cache "
                f"uses {self.policy.name!r} (mixed-policy reuse is invalid)"
            )
        if arena.state_key != self._state_key:
            raise ValueError(
                f"arena was built for deployment state {arena.state_key!r}; "
                f"this cache is at {self._state_key!r}"
            )
        # The backend tag is execution metadata, not structure: kernels
        # are bit-identical across backends, so an arena shipped from a
        # peer simply runs on *this* cache's resolved backend.
        arena.backend = self.backend_name
        self._installs += arena.num_dests
        self._adopt_arena(arena)

    def _adopt_arena(self, arena: RoutingArena) -> None:
        self._arena = arena
        for k, dest in enumerate(self.destinations):
            self._routing[dest] = arena.view(k)
        self._cls_matrix = arena.cls
        registry = get_registry()
        registry.gauge("routing.arena.bytes").set(arena.nbytes)

    def install(self, dest: int, routing: DestRouting) -> None:
        """Install a :class:`DestRouting` computed elsewhere.

        Public entry point for parallel warmers (the per-destination
        structures are computed in worker processes and shipped back).
        The structure must carry this cache's policy name (the worker
        builders tag it); ``dest`` must be one of ``destinations``.
        """
        if dest not in self._dest_pos:
            raise KeyError(f"destination {dest} not in cache")
        if routing.policy != self.policy.name:
            raise ValueError(
                f"routing for destination {dest} was built under policy "
                f"{routing.policy!r}; this cache uses {self.policy.name!r}"
            )
        self._installs += 1
        self._routing[dest] = routing

    def note_warm_time(self, seconds: float) -> None:
        """Attribute externally-measured warm wall time to this cache.

        Called by :func:`repro.parallel.engine.parallel_warm_cache` with
        the wall time of the whole warm map, since installed trees carry
        no per-tree timing of their own.
        """
        self._warm_seconds += seconds

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` (hits, misses, warm time, fill)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            builds=self._builds,
            installs=self._installs,
            warm_seconds=self._warm_seconds,
            cached=len(self._routing),
            total=len(self.destinations),
            policy=self.policy.name,
            state_rebuilds=self._state_rebuilds,
            arena_bytes=self._arena.nbytes if self._arena is not None else 0,
            backend=self.backend_name,
        )

    def is_cached(self, dest: int) -> bool:
        """True if ``dest`` has already been computed or installed."""
        return dest in self._routing

    def pending_destinations(self) -> list[int]:
        """Destinations not yet computed, in ``destinations`` order."""
        return [d for d in self.destinations if d not in self._routing]

    @property
    def cls_matrix(self) -> np.ndarray:
        """int8 matrix ``[len(destinations), n]`` of route classes.

        Row ``k`` corresponds to ``destinations[k]``.  For
        state-dependent policies the matrix reflects the state last
        passed to :meth:`ensure_state`.
        """
        if self._cls_matrix is None:
            mat = np.empty((len(self.destinations), self.graph.n), dtype=np.int8)
            for k, dest in enumerate(self.destinations):
                mat[k] = self.dest_routing(dest).cls
            self._cls_matrix = mat
        return self._cls_matrix

    def position_of(self, dest: int) -> int | None:
        """Row index of ``dest`` within ``destinations`` (None if absent)."""
        return self._dest_pos.get(dest)

    def dest_pos(self, dest: int) -> int:
        """Row index of ``dest`` within ``destinations``."""
        try:
            return self._dest_pos[dest]
        except KeyError:
            raise KeyError(f"destination {dest} not in cache") from None
