"""Cache of state-independent routing structures for a fixed graph.

Observation C.1 makes everything in :class:`DestRouting` reusable across
deployment states, so a simulation computes it once per destination and
keeps it for every round and every projected state.  The cache also
exposes the dense class matrix (``cls_matrix[d, i]`` = route class of
node ``i`` toward destination ``d``) that the projection engine uses to
filter destinations.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from repro.routing.arena import RoutingArena
from repro.routing.compiled import CompiledGraph
from repro.routing.tree import DestRouting, compute_dest_routing
from repro.telemetry.metrics import get_registry
from repro.topology.graph import ASGraph

#: routing-policy registry: name -> compute function.  "gao-rexford" is
#: the Appendix-A model; "sp-first" is the §8.3 shortest-path-first
#: variant (see :mod:`repro.routing.variants`).
POLICIES: dict[str, Callable[..., DestRouting]] = {}


def _register_policies() -> None:
    from repro.routing.variants import compute_dest_routing_sp_first

    POLICIES.setdefault("gao-rexford", compute_dest_routing)
    POLICIES.setdefault("sp-first", compute_dest_routing_sp_first)


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Public accounting for one :class:`RoutingCache` instance.

    ``warm_seconds`` sums in-process tree-build time plus any parallel
    warm wall time noted via :meth:`RoutingCache.note_warm_time`;
    ``installs`` counts trees computed elsewhere (worker processes) and
    shipped in, whose per-tree build time lives in the workers'
    telemetry snapshots rather than here.
    """

    hits: int
    misses: int
    builds: int
    installs: int
    warm_seconds: float
    cached: int
    total: int

    @property
    def cached_fraction(self) -> float:
        """Fraction of this cache's destinations already computed."""
        return self.cached / self.total if self.total else 1.0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (NaN-free: 0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class RoutingCache:
    """Lazily computed :class:`DestRouting` per destination.

    Parameters
    ----------
    graph:
        The (already final) AS graph.  Mutating the graph after creating
        a cache invalidates it; create a new cache instead.
    destinations:
        Restrict the cache to these destination indices (default: all).
        Experiments on large graphs may sample destinations; utilities
        are then computed over the sampled destination set only.
    policy:
        Routing policy name from :data:`POLICIES` ("gao-rexford"
        default, "sp-first" for the §8.3 variant).
    transform:
        Optional post-processor applied to each computed
        :class:`DestRouting` (e.g. the sticky-primary restriction of
        :func:`repro.routing.variants.restrict_to_primary`).
    """

    def __init__(
        self,
        graph: ASGraph,
        destinations: list[int] | None = None,
        policy: str = "gao-rexford",
        transform: Callable[[DestRouting], DestRouting] | None = None,
    ):
        _register_policies()
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {sorted(POLICIES)}")
        self.policy = policy
        self.transform = transform
        self.graph = graph
        self.compiled = CompiledGraph.from_graph(graph)
        self.destinations = list(range(graph.n)) if destinations is None else list(destinations)
        self._dest_pos = {d: k for k, d in enumerate(self.destinations)}
        self._routing: dict[int, DestRouting] = {}
        self._arena: RoutingArena | None = None
        self._cls_matrix: np.ndarray | None = None
        self._hits = 0
        self._misses = 0
        self._builds = 0
        self._installs = 0
        self._warm_seconds = 0.0

    @property
    def n(self) -> int:
        """Number of nodes in the underlying graph."""
        return self.graph.n

    def dest_routing(self, dest: int) -> DestRouting:
        """The :class:`DestRouting` for ``dest`` (computed on first use)."""
        dr = self._routing.get(dest)
        registry = get_registry()
        if dr is None:
            self._misses += 1
            registry.counter("routing.cache.misses").inc()
            start = time.perf_counter()
            dr = POLICIES[self.policy](self.graph, dest, self.compiled)
            if self.transform is not None:
                dr = self.transform(dr)
            elapsed = time.perf_counter() - start
            self._builds += 1
            self._warm_seconds += elapsed
            registry.counter("routing.tree_builds").inc()
            registry.histogram("routing.tree_build_seconds").observe(elapsed)
            self._routing[dest] = dr
        else:
            self._hits += 1
            registry.counter("routing.cache.hits").inc()
        return dr

    def warm(self) -> None:
        """Precompute every destination in ``destinations``."""
        for dest in self.destinations:
            self.dest_routing(dest)

    @property
    def arena(self) -> RoutingArena | None:
        """The pooled routing arena, if one has been built (else None)."""
        return self._arena

    def ensure_arena(self) -> RoutingArena:
        """Warm everything and pack it into a :class:`RoutingArena`.

        The cached per-destination :class:`DestRouting` objects are
        replaced by zero-copy views into the arena pools, so subsequent
        :meth:`dest_routing` lookups hand out pool-backed structures
        (with their tie-break keys precomputed) and the original
        fragmented arrays are released.  Idempotent after the first
        call; a shared arena installed via :meth:`install_arena` is
        reused as-is.
        """
        if self._arena is None:
            self.warm()
            arena = RoutingArena.build(
                self.graph.n,
                self.destinations,
                [self._routing[d] for d in self.destinations],
            )
            self._adopt_arena(arena)
        return self._arena

    def install_arena(self, arena: RoutingArena) -> None:
        """Adopt a pre-built arena (e.g. attached from shared memory).

        The arena's slot order must match this cache's ``destinations``;
        every destination is then considered cached (counted as
        installs, like trees shipped in from parallel warm workers).
        """
        if list(arena.dest_ids) != list(self.destinations):
            raise ValueError("arena destinations do not match this cache")
        self._installs += arena.num_dests
        self._adopt_arena(arena)

    def _adopt_arena(self, arena: RoutingArena) -> None:
        self._arena = arena
        for k, dest in enumerate(self.destinations):
            self._routing[dest] = arena.view(k)
        self._cls_matrix = arena.cls
        registry = get_registry()
        registry.gauge("routing.arena.bytes").set(arena.nbytes)

    def install(self, dest: int, routing: DestRouting) -> None:
        """Install a :class:`DestRouting` computed elsewhere.

        Public entry point for parallel warmers (the per-destination
        structures are computed in worker processes and shipped back).
        The caller is responsible for having applied this cache's
        policy and transform; ``dest`` must be one of ``destinations``.
        """
        if dest not in self._dest_pos:
            raise KeyError(f"destination {dest} not in cache")
        self._installs += 1
        self._routing[dest] = routing

    def note_warm_time(self, seconds: float) -> None:
        """Attribute externally-measured warm wall time to this cache.

        Called by :func:`repro.parallel.engine.parallel_warm_cache` with
        the wall time of the whole warm map, since installed trees carry
        no per-tree timing of their own.
        """
        self._warm_seconds += seconds

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` (hits, misses, warm time, fill)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            builds=self._builds,
            installs=self._installs,
            warm_seconds=self._warm_seconds,
            cached=len(self._routing),
            total=len(self.destinations),
        )

    def is_cached(self, dest: int) -> bool:
        """True if ``dest`` has already been computed or installed."""
        return dest in self._routing

    def pending_destinations(self) -> list[int]:
        """Destinations not yet computed, in ``destinations`` order."""
        return [d for d in self.destinations if d not in self._routing]

    @property
    def cls_matrix(self) -> np.ndarray:
        """int8 matrix ``[len(destinations), n]`` of route classes.

        Row ``k`` corresponds to ``destinations[k]``.
        """
        if self._cls_matrix is None:
            mat = np.empty((len(self.destinations), self.graph.n), dtype=np.int8)
            for k, dest in enumerate(self.destinations):
                mat[k] = self.dest_routing(dest).cls
            self._cls_matrix = mat
        return self._cls_matrix

    def position_of(self, dest: int) -> int | None:
        """Row index of ``dest`` within ``destinations`` (None if absent)."""
        return self._dest_pos.get(dest)

    def dest_pos(self, dest: int) -> int:
        """Row index of ``dest`` within ``destinations``."""
        try:
            return self._dest_pos[dest]
        except KeyError:
            raise KeyError(f"destination {dest} not in cache") from None
