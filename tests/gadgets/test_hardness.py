"""The Appendix-E set-cover reduction (Theorem 6.1)."""

from __future__ import annotations

import pytest

from repro.gadgets.hardness import SetCoverInstance, build_set_cover_network
from repro.routing.cache import RoutingCache


@pytest.fixture(scope="module")
def instance() -> SetCoverInstance:
    return SetCoverInstance(
        universe=(1, 2, 3, 4, 5, 6),
        subsets=(
            frozenset({1, 2, 3}),
            frozenset({4, 5}),
            frozenset({3, 6}),
            frozenset({6}),
        ),
        k=2,
    )


@pytest.fixture(scope="module")
def network(instance):
    net = build_set_cover_network(instance)
    cache = RoutingCache(net.graph)
    return net, cache


class TestInstance:
    def test_linearity_check(self, instance):
        assert instance.is_linear()
        overlapping = SetCoverInstance(
            universe=(1, 2), subsets=(frozenset({1, 2}), frozenset({1, 2})), k=1
        )
        assert not overlapping.is_linear()

    def test_coverage(self, instance):
        assert instance.coverage([0]) == 3
        assert instance.coverage([0, 1]) == 5
        assert instance.coverage([]) == 0

    def test_brute_force_cover(self, instance):
        chosen, covered = instance.best_cover()
        assert covered == 5
        assert set(chosen) == {0, 1}

    def test_greedy_cover(self, instance):
        chosen, covered = instance.greedy_cover()
        assert covered == 5

    def test_greedy_can_be_suboptimal(self):
        """The classic greedy trap: a big middle set misleads it."""
        inst = SetCoverInstance(
            universe=(1, 2, 3, 4, 5, 6),
            subsets=(
                frozenset({1, 2, 3, 4}),   # greedy grabs this
                frozenset({1, 2, 5}),
                frozenset({3, 4, 6}),
            ),
            k=2,
        )
        greedy_chosen, greedy_cov = inst.greedy_cover()
        best_chosen, best_cov = inst.best_cover()
        assert best_cov == 6
        assert set(best_chosen) == {1, 2}
        assert greedy_cov < best_cov


class TestReduction:
    def test_secure_count_formula(self, network):
        """Adoption count = 1 + 2k + covered elements, exactly."""
        net, cache = network
        for chosen in [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]:
            assert net.secure_count_for(chosen, cache) == net.expected_secure_count(chosen)

    def test_optimal_adoption_is_optimal_cover(self, network):
        net, cache = network
        inst = net.instance
        best_by_simulation = max(
            ((i, j) for i in range(4) for j in range(i + 1, 4)),
            key=lambda pair: net.secure_count_for(pair, cache),
        )
        _, best_cov = inst.best_cover()
        assert inst.coverage(best_by_simulation) == best_cov

    def test_empty_seed_secures_nothing(self, network):
        net, cache = network
        assert net.secure_count_for((), cache) == 0
