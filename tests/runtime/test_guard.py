"""Unit tests for the runtime guard: deadlines, budgets, the ladder."""

from __future__ import annotations

import pytest

from repro.parallel.partition import partitions_for_budget
from repro.routing.arena import RoutingArena
from repro.runtime.errors import DeadlineExceeded, MemoryBudgetExceeded
from repro.runtime.guard import (
    LADDER_RUNGS,
    NULL_GUARD,
    Deadline,
    DegradationLadder,
    MemoryBudget,
    RuntimeGuard,
    current_guard,
    parse_size,
    use_guard,
)


class FakeClock:
    """A settable clock so deadline expiry is deterministic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d.remaining() == pytest.approx(10.0)
        assert not d.expired()
        clock.advance(10.0)
        assert d.expired()

    def test_check_raises_typed_error_naming_checkpoint(self):
        clock = FakeClock()
        d = Deadline(5.0, clock=clock)
        d.check("sweep cell")  # not expired: no raise
        clock.advance(6.0)
        with pytest.raises(DeadlineExceeded, match="sweep cell") as info:
            d.check("sweep cell")
        assert info.value.where == "sweep cell"
        assert info.value.budget_seconds == 5.0
        assert "--resume" in str(info.value)

    def test_cap_timeout_replaces_none_with_remaining(self):
        clock = FakeClock()
        d = Deadline(8.0, clock=clock)
        assert d.cap_timeout(None) == pytest.approx(8.0)
        assert d.cap_timeout(3.0) == pytest.approx(3.0)
        clock.advance(6.0)
        assert d.cap_timeout(3.0) == pytest.approx(2.0)
        clock.advance(10.0)
        assert d.cap_timeout(None) == 0.0  # never negative

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)


class TestParseSize:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("1024", 1024),
            ("750k", 750 * 2**10),
            ("512MiB", 512 * 2**20),
            ("2GB", 2 * 2**30),
            ("1.5g", int(1.5 * 2**30)),
            ("1T", 2**40),
            (4096, 4096),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "MiB", "12 parsecs", "-5", "0", 0, -3])
    def test_rejected_forms(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestMemoryBudget:
    def test_fits_and_require(self):
        budget = MemoryBudget("1MiB")
        assert budget.fits(2**20)
        assert not budget.fits(2**20 + 1)
        budget.require(100, "tiny thing")
        with pytest.raises(MemoryBudgetExceeded, match="huge thing"):
            budget.require(2**21, "huge thing")

    def test_accepts_size_strings(self):
        assert MemoryBudget("2g").limit_bytes == 2 * 2**30


class TestDegradationLadder:
    def test_counts_per_rung(self):
        ladder = DegradationLadder()
        ladder.take("chunked_batches", "test")
        ladder.take("chunked_batches", "test")
        ladder.take("lazy_warm", "test")
        assert ladder.taken("chunked_batches") == 2
        assert ladder.taken("lazy_warm") == 1
        assert ladder.taken("shm_to_pickle") == 0
        assert ladder.rungs_taken() == {"chunked_batches": 2, "lazy_warm": 1}

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation rung"):
            DegradationLadder().take("give_up", "test")

    def test_warns_only_on_first_take(self, caplog):
        ladder = DegradationLadder()
        with caplog.at_level("WARNING", logger="repro.runtime.guard"):
            ladder.take("chunked_batches", "reason one")
            ladder.take("chunked_batches", "reason two")
        warnings = [r for r in caplog.records if "degraded" in r.getMessage()]
        assert len(warnings) == 1


class TestRuntimeGuard:
    def test_null_guard_is_permissive(self):
        assert not NULL_GUARD.active
        NULL_GUARD.check_deadline("anywhere")  # no raise
        assert NULL_GUARD.cap_timeout(None) is None
        assert NULL_GUARD.cap_timeout(5.0) == 5.0
        assert NULL_GUARD.fits_memory(10**15)
        assert NULL_GUARD.plan_workers(8, per_worker_bytes=10**12) == 8
        assert NULL_GUARD.plan_batch_rows(1000, row_bytes=10**9) == 1000

    def test_plan_workers_halves_to_fit(self):
        guard = RuntimeGuard(memory=MemoryBudget(100))
        # 8 workers x 30 bytes = 240 > 100; 4 x 30 = 120 > 100; 2 x 30 fits
        assert guard.plan_workers(8, per_worker_bytes=30) == 2
        assert guard.ladder.taken("reduced_workers") == 2
        assert guard.ladder.taken("serial_workers") == 0

    def test_plan_workers_lands_on_serial(self):
        guard = RuntimeGuard(memory=MemoryBudget(100))
        assert guard.plan_workers(4, per_worker_bytes=90) == 1
        assert guard.ladder.taken("serial_workers") == 1

    def test_plan_workers_counts_base_bytes(self):
        guard = RuntimeGuard(memory=MemoryBudget(100))
        assert guard.plan_workers(2, per_worker_bytes=10, base_bytes=90) == 1

    def test_plan_batch_rows_chunks_to_budget_share(self):
        guard = RuntimeGuard(memory=MemoryBudget(800))
        # share = 800 // 8 = 100; 50 rows x 10 bytes = 500 > 100 -> 10 rows
        assert guard.plan_batch_rows(50, row_bytes=10) == 10
        assert guard.ladder.taken("chunked_batches") == 1

    def test_plan_batch_rows_full_batch_when_it_fits(self):
        guard = RuntimeGuard(memory=MemoryBudget(8000))
        assert guard.plan_batch_rows(50, row_bytes=10) == 50
        assert guard.ladder.rungs_taken() == {}

    def test_use_guard_installs_and_restores(self):
        guard = RuntimeGuard(memory=MemoryBudget("1MiB"))
        assert current_guard() is NULL_GUARD
        with use_guard(guard) as installed:
            assert installed is guard
            assert current_guard() is guard
            inner = RuntimeGuard()
            with use_guard(inner):
                assert current_guard() is inner
            assert current_guard() is guard
        assert current_guard() is NULL_GUARD


class TestLadderRungNames:
    def test_rungs_are_stable(self):
        assert LADDER_RUNGS == (
            "shm_to_pickle",
            "chunked_batches",
            "reduced_workers",
            "serial_workers",
            "lazy_warm",
            "compiled_to_numpy",
        )


class TestPartitionsForBudget:
    def test_no_budget_returns_default(self):
        assert partitions_for_budget(100, 4, 10**6, None) == 4

    def test_grows_partitions_to_fit(self):
        # 100 items x 10 bytes, budget 200 -> 20 items/partition -> 5
        assert partitions_for_budget(100, 4, 10, 200) == 5

    def test_never_shrinks_below_default(self):
        assert partitions_for_budget(100, 8, 10, 10**9) == 8

    def test_caps_at_one_item_per_partition(self):
        assert partitions_for_budget(10, 1, 100, 1) == 10

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            partitions_for_budget(10, 0, 10, 100)


class TestArenaEstimate:
    def test_estimate_bounds_actual_footprint(self):
        from repro.experiments.setup import build_environment

        env = build_environment(n=150, seed=13, x=0.10, warm=True)
        arena = env.cache.ensure_arena()
        estimate = RoutingArena.estimate_bytes(arena.num_dests, env.graph.n)
        assert estimate >= arena.nbytes
        assert estimate <= 10 * arena.nbytes

    def test_estimate_scales_linearly_in_dests(self):
        one = RoutingArena.estimate_bytes(100, 1000)
        two = RoutingArena.estimate_bytes(200, 1000)
        assert two == pytest.approx(2 * one, rel=0.01)
