"""Table 3 (Appendix D): CP mean path lengths, original vs augmented.

Paper: CP mean path lengths are 2.7-6.9 hops on the raw graph and drop
to ~2.1-2.2 after IXP-peering augmentation (matching the Knodes index).
Shape: every CP's mean path length decreases, approaching ~2.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.topology.augment import mean_cp_path_length


def test_table3_cp_path_lengths(benchmark, env, env_augmented, capsys):
    def measure():
        out = []
        for cp in env.cp_asns:
            before = mean_cp_path_length(env.graph, cp)
            after = mean_cp_path_length(env_augmented.graph, cp)
            out.append((cp, before, after))
        return out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["CP", "original", "augmented"],
            [[cp, f"{b:.2f}", f"{a:.2f}"] for cp, b, a in rows],
            title="Table 3: CP mean path lengths (paper: 2.7-6.9 -> ~2.1)",
        ))
    for cp, before, after in rows:
        assert after <= before + 1e-9
