"""Tests for the deployment game loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation, Outcome, run_deployment
from repro.gadgets.diamond import build_diamond
from repro.topology.generator import generate_topology
from repro.topology.traffic import apply_traffic_model


@pytest.fixture(scope="module")
def sim_graph():
    top = generate_topology(n=250, seed=17)
    apply_traffic_model(top.graph, 0.10)
    return top


class TestTermination:
    def test_reaches_stable_state_outgoing(self, sim_graph):
        from repro.core.adopters import cps_plus_top_isps

        result = run_deployment(
            sim_graph.graph,
            cps_plus_top_isps(sim_graph.graph, 3),
            SimulationConfig(theta=0.05),
        )
        assert result.outcome is Outcome.STABLE
        # last round is quiet by definition of stability
        assert result.rounds[-1].turned_on == []
        assert result.rounds[-1].turned_off == []

    def test_no_adopters_no_theta_zero_progress(self, sim_graph):
        result = run_deployment(
            sim_graph.graph, [], SimulationConfig(theta=0.30)
        )
        assert result.outcome is Outcome.STABLE
        assert not result.final_node_secure.any()

    def test_max_rounds_cap(self, sim_graph):
        from repro.core.adopters import top_degree_isps

        result = run_deployment(
            sim_graph.graph,
            top_degree_isps(sim_graph.graph, 3),
            SimulationConfig(theta=0.0, max_rounds=1),
        )
        assert result.outcome is Outcome.MAX_ROUNDS
        assert result.num_rounds == 1


class TestMonotonicity:
    def test_outgoing_deployment_monotone(self, sim_graph):
        """Theorem 6.2: nobody turns off, so security only grows."""
        from repro.core.adopters import cps_plus_top_isps

        result = run_deployment(
            sim_graph.graph,
            cps_plus_top_isps(sim_graph.graph, 3),
            SimulationConfig(theta=0.02),
        )
        counts = result.secure_ases_per_round()
        assert counts == sorted(counts)
        assert all(not r.turned_off for r in result.rounds)

    def test_lower_theta_at_least_as_much_adoption(self, sim_graph):
        from repro.core.adopters import cps_plus_top_isps
        from repro.routing.cache import RoutingCache

        cache = RoutingCache(sim_graph.graph)
        adopters = cps_plus_top_isps(sim_graph.graph, 3)
        fractions = []
        for theta in (0.0, 0.10, 0.50):
            result = run_deployment(
                sim_graph.graph, adopters, SimulationConfig(theta=theta), cache
            )
            fractions.append(int(result.final_node_secure.sum()))
        assert fractions[0] >= fractions[1] >= fractions[2]


class TestHistory:
    @pytest.fixture(scope="class")
    def result(self, sim_graph):
        from repro.core.adopters import cps_plus_top_isps

        return run_deployment(
            sim_graph.graph,
            cps_plus_top_isps(sim_graph.graph, 3),
            SimulationConfig(theta=0.05),
        )

    def test_round_records_consistent(self, result):
        for k, record in enumerate(result.rounds):
            assert record.index == k + 1
            for isp in record.turned_on:
                assert isp in record.projections

    def test_newly_secure_sums(self, result):
        total_new = sum(result.newly_secure_per_round())
        first = result.rounds[0].num_secure_ases
        final = int(result.final_node_secure.sum())
        assert first + total_new == final

    def test_utility_history_length(self, result):
        node = result.graph.isp_indices[0]
        assert len(result.utility_history(node)) == result.num_rounds + 1

    def test_adoption_round(self, result):
        adopted = [i for r in result.rounds for i in r.turned_on]
        if adopted:
            node = adopted[0]
            k = result.adoption_round(node)
            assert node in result.rounds[k - 1].turned_on
        never = [
            i for i in result.graph.isp_indices
            if i not in result.final_state.deployers
        ]
        if never:
            assert result.adoption_round(never[0]) is None

    def test_record_utilities_off(self, sim_graph):
        from repro.core.adopters import top_degree_isps

        result = run_deployment(
            sim_graph.graph,
            top_degree_isps(sim_graph.graph, 2),
            SimulationConfig(theta=0.05, record_utilities=False, max_rounds=3),
        )
        with pytest.raises(ValueError):
            result.utility_history(0)


class TestPlayers:
    def test_player_restriction(self):
        net = build_diamond()
        apply_traffic_model(net.graph, 0.0)
        cfg = SimulationConfig(theta=0.01)
        sim = DeploymentSimulation(
            net.graph, [net.source], cfg, player_asns=[net.left]
        )
        result = sim.run()
        g = net.graph
        # only `left` was allowed to move
        assert result.final_node_secure[g.index(net.left)]
        assert not result.final_node_secure[g.index(net.right)]


class TestOscillation:
    def test_chicken_oscillates(self):
        from repro.gadgets.oscillator import build_chicken

        net = build_chicken()
        cfg = SimulationConfig(
            theta=0.0, utility_model=UtilityModel.INCOMING, max_rounds=20
        )
        sim = DeploymentSimulation(
            net.graph, net.fixed_on, cfg, player_asns=list(net.players)
        )
        result = sim.run()
        assert result.outcome is Outcome.OSCILLATION
        assert any(r.turned_off for r in result.rounds)
