"""Figure 10: tiebreak-set size distribution (§6.6).

Paper: mean 1.18 over all source-destination pairs (ISPs 1.30, stubs
1.16); only ~20% of sets contain more than one path; distribution is
heavy-tailed on a log-log scale.  Shape: small means, ISP > stub, a
long but thin tail.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.routing.tiebreak import collect_tiebreak_stats


def test_fig10_tiebreak_distribution(benchmark, env, capsys):
    stats = benchmark.pedantic(
        lambda: collect_tiebreak_stats(env.graph, dest_routing=env.cache.dest_routing),
        rounds=1, iterations=1,
    )
    rows = [[size, count] for size, count in sorted(stats.histogram.items())][:12]
    with capsys.disabled():
        print()
        print(format_table(["set size", "pairs"], rows,
                           title="Fig 10: tiebreak-set size histogram"))
        print(f"  mean {stats.mean:.2f} "
              f"(paper 1.18) | ISPs {stats.mean_isp:.2f} (1.30) "
              f"| stubs {stats.mean_stub:.2f} (1.16)")
        print(f"  multi-path pairs: {stats.multi_path_fraction:.1%} (paper ~20%)")

    assert 1.0 <= stats.mean <= 2.0
    assert stats.mean_isp >= stats.mean_stub
    assert stats.multi_path_fraction < 0.5
