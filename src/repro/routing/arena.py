"""Pooled structure-of-arrays routing arena + batched tree kernel.

The per-destination :class:`~repro.routing.tree.DestRouting` objects are
individually compact, but a warm cache holds thousands of them: a dict
of Python objects, each owning half a dozen small numpy arrays.  That
layout costs allocator overhead, defeats zero-copy transport between
processes, and forces every routing-state sweep to run a Python loop of
``n_dests x n_levels`` kernel launches.

:class:`RoutingArena` packs *all* destinations into a handful of
contiguous pools with a per-destination offset table:

- ``order_pool`` / ``level_pool`` / ``indptr_pool`` / ``cands_pool``:
  the CSR structures of every destination, concatenated, with
  ``*_ptr`` offset tables (``order_ptr[k]:order_ptr[k+1]`` is slot
  ``k``'s slice);
- ``keys_pool``: the state-independent tie-break keys (hash high bits |
  row-position low bits) for every tiebreak candidate.  These do not
  depend on the deployment state, so the arena computes them exactly
  once per destination instead of on every ``compute_tree`` call;
- ``cls`` / ``lengths`` / ``row_of``: dense ``[num_dests, n]`` matrices
  (``cls`` doubles as the projection engine's class matrix).

``view(k)`` reconstitutes a zero-copy :class:`DestRouting` over the
pools, so all existing per-destination code keeps working unchanged.

On top of the pools, :func:`compute_trees_batched` resolves *many*
destinations in one level-synchronous pass: same-path-length segments
are stacked across destinations (the arena precomputes this level-major
layout), so the Python-level loop runs over the handful of **global**
levels instead of ``n_dests x n_levels``.  Candidates always sit one
level below their row's node, so interleaving destinations within a
level is safe — each destination still sees its own already-resolved
previous level.

Because every pool is a flat typed buffer, the arena also serialises to
a single byte blob (:meth:`RoutingArena.to_blocks` /
:meth:`RoutingArena.from_buffer`), which is what the shared-memory data
plane in :mod:`repro.parallel.shm` ships between processes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.routing import backends as kernel_backends
from repro.routing.compiled import gather_neighbors
from repro.routing.fast_tree import RoutingTree
from repro.routing.tree import DestRouting, compute_tie_keys
from repro.telemetry.metrics import get_registry

#: (field name, dtype) of every pooled array, in serialisation order.
#: ``*_ptr`` tables have length ``num_dests + 1``; matrices are
#: ``[num_dests, n]``; pools are flat.
ARENA_FIELDS: tuple[tuple[str, str], ...] = (
    ("dest_ids", "int32"),
    ("cls", "int8"),
    ("lengths", "int32"),
    ("row_of", "int32"),
    ("order_ptr", "int64"),
    ("order_pool", "int32"),
    ("level_ptr", "int64"),
    ("level_pool", "int32"),
    ("indptr_ptr", "int64"),
    ("indptr_pool", "int64"),
    ("cand_ptr", "int64"),
    ("cands_pool", "int32"),
    ("keys_pool", "uint64"),
)


def _concat_with_ptr(arrays: list[np.ndarray], dtype) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``arrays`` into one pool plus an int64 offset table."""
    ptr = np.zeros(len(arrays) + 1, dtype=np.int64)
    if arrays:
        np.cumsum([len(a) for a in arrays], out=ptr[1:])
        pool = np.concatenate(arrays).astype(dtype, copy=False)
    else:
        pool = np.empty(0, dtype=dtype)
    return pool, ptr


@dataclasses.dataclass
class _LevelSlice:
    """Level-major stacked layout for one global path-length level.

    ``node_ptr`` / ``edge_ptr`` are per-destination-slot segment tables
    (length ``num_dests + 1``) into the stacked arrays, so a *subset*
    of destinations extracts its stack with one vectorised gather.
    """

    node_ptr: np.ndarray   # int64[num_dests + 1]
    nodes: np.ndarray      # int32; global node ids, stacked by slot
    sizes: np.ndarray      # int64; tiebreak-set size per stacked node
    edge_ptr: np.ndarray   # int64[num_dests + 1]
    cands: np.ndarray      # int32; stacked candidate node ids
    keys: np.ndarray       # uint64; stacked tie-break keys
    # full-set fast path (slots == arange(num_dests)):
    node_slot: np.ndarray  # int32; destination slot per stacked node
    starts: np.ndarray     # int64; reduceat starts per stacked node
    row_of_edge: np.ndarray  # int64; stacked-node row per stacked edge


@dataclasses.dataclass
class BatchedTrees:
    """Resolved routing trees for a batch of destination slots.

    Row ``i`` of each matrix is the tree for ``slots[i]``; rows are
    zero-copy views, so :meth:`tree` materialises a per-destination
    :class:`RoutingTree` without allocation.
    """

    dest_ids: np.ndarray      # int32[B]; dense destination node per row
    slots: np.ndarray         # int64[B]; arena slot per row
    choice: np.ndarray        # int32[B, n]
    secure: np.ndarray        # bool[B, n]
    any_secure: np.ndarray    # bool[B, n]

    def tree(self, i: int) -> RoutingTree:
        """The :class:`RoutingTree` of batch row ``i`` (views, no copy)."""
        return RoutingTree(
            dest=int(self.dest_ids[i]),
            choice=self.choice[i],
            secure=self.secure[i],
            any_secure_candidate=self.any_secure[i],
        )


class RoutingArena:
    """Pooled, contiguous routing structures for a destination set."""

    def __init__(
        self,
        graph_n: int,
        arrays: dict[str, np.ndarray],
        policy: str = "security_3rd",
        state_key: str | None = None,
        backend: str = "numpy",
    ):
        self.graph_n = graph_n
        #: registry name of the routing policy the structures were built
        #: under; :meth:`RoutingCache.install_arena` refuses a mismatch
        self.policy = policy
        #: deployment-state digest for state-dependent policies (None
        #: for state-independent structures, which serve every state)
        self.state_key = state_key
        #: kernel backend name the batched kernels dispatch through
        #: (:mod:`repro.routing.backends`); plain data, so it travels
        #: with the arena through shared memory and job specs.  The
        #: *consuming* process resolves it — and degrades to numpy —
        #: at call time.
        self.backend = backend
        for name, dtype in ARENA_FIELDS:
            arr = arrays[name]
            if str(arr.dtype) != dtype:
                raise ValueError(f"arena field {name}: expected {dtype}, got {arr.dtype}")
            setattr(self, name, arr)
        self._levels: list[_LevelSlice] | None = None
        self._full_slots = np.arange(self.num_dests, dtype=np.int64)

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        graph_n: int,
        dest_ids: list[int],
        routings: list[DestRouting],
        policy: str = "security_3rd",
        state_key: str | None = None,
        backend: str = "numpy",
    ) -> "RoutingArena":
        """Pack per-destination :class:`DestRouting` structures.

        ``routings[k]`` must be the structure for ``dest_ids[k]``; the
        slot order of the arena is the order given here.  ``policy`` /
        ``state_key`` / ``backend`` are carried as metadata so a shipped
        arena can never be re-used under a different policy or
        deployment state, and so kernel dispatch follows the arena.
        """
        if len(dest_ids) != len(routings):
            raise ValueError("dest_ids and routings must align")
        num = len(routings)
        order_pool, order_ptr = _concat_with_ptr([r.order for r in routings], np.int32)
        level_pool, level_ptr = _concat_with_ptr(
            [r.level_starts for r in routings], np.int32
        )
        indptr_pool, indptr_ptr = _concat_with_ptr(
            [r.indptr for r in routings], np.int64
        )
        cands_pool, cand_ptr = _concat_with_ptr([r.cands for r in routings], np.int32)

        cls_mat = np.empty((num, graph_n), dtype=np.int8)
        lengths = np.empty((num, graph_n), dtype=np.int32)
        row_of = np.empty((num, graph_n), dtype=np.int32)
        for k, r in enumerate(routings):
            cls_mat[k] = r.cls
            lengths[k] = r.lengths
            row_of[k] = r.row_of

        # Tie-break keys for the whole pool, computed exactly once per
        # destination (state-independent: Observation C.1 extends to TB).
        keys_pool = np.empty(len(cands_pool), dtype=np.uint64)
        for k in range(num):
            lo, hi = int(cand_ptr[k]), int(cand_ptr[k + 1])
            r = routings[k]
            cached = r._tie_keys
            keys_pool[lo:hi] = (
                cached if cached is not None
                else compute_tie_keys(r.order, r.indptr, r.cands)
            )

        arena = cls(
            graph_n,
            {
                "dest_ids": np.asarray(dest_ids, dtype=np.int32),
                "cls": cls_mat,
                "lengths": lengths,
                "row_of": row_of,
                "order_ptr": order_ptr,
                "order_pool": order_pool,
                "level_ptr": level_ptr,
                "level_pool": level_pool,
                "indptr_ptr": indptr_ptr,
                "indptr_pool": indptr_pool,
                "cand_ptr": cand_ptr,
                "cands_pool": cands_pool,
                "keys_pool": keys_pool,
            },
            policy=policy,
            state_key=state_key,
            backend=backend,
        )
        registry = get_registry()
        registry.counter("routing.arena.builds").inc()
        registry.gauge("routing.arena.bytes").set(arena.nbytes)
        return arena

    # -- basic accessors -----------------------------------------------

    @property
    def num_dests(self) -> int:
        return len(self.dest_ids)

    @property
    def nbytes(self) -> int:
        """Total bytes of the pooled arrays (telemetry: arena bytes)."""
        return sum(getattr(self, name).nbytes for name, _ in ARENA_FIELDS)

    @classmethod
    def estimate_bytes(
        cls,
        num_dests: int,
        n: int,
        avg_reach_fraction: float = 1.0,
        avg_cands_per_node: float = 1.5,
        include_level_major: bool = True,
    ) -> int:
        """Predict the pooled footprint of an arena *before* building it.

        The resource guard consults this forecast to plan worker counts
        and warm strategy, so it deliberately over- rather than
        under-estimates.  Derived from :data:`ARENA_FIELDS`:

        - dense matrices (``cls`` int8 + ``lengths``/``row_of`` int32):
          9 bytes per ``(dest, node)`` cell;
        - CSR pools: ``order_pool`` (int32) + ``indptr_pool`` (int64)
          cost 12 bytes per *reachable* node; ``cands_pool`` (int32) +
          ``keys_pool`` (uint64) cost 12 bytes per tie-break candidate
          (``avg_cands_per_node`` per reachable node — measured ~1.1-1.3
          on CAIDA-like graphs, 1.5 is the safe default);
        - offset tables: five int64 ``*_ptr`` arrays of ``num_dests+1``.

        ``avg_reach_fraction`` scales the per-destination reach (1.0 =
        every node reaches every destination, the connected-graph
        worst case).  ``include_level_major`` also counts the stacked
        level-major mirror the batched kernel builds lazily (roughly a
        second copy of the CSR pools) — that mirror is resident during
        every round, so planning without it would undercount by ~2x.
        """
        if num_dests < 0 or n < 0:
            raise ValueError("num_dests and n must be >= 0")
        reach = num_dests * n * avg_reach_fraction
        cands = reach * avg_cands_per_node
        dense = num_dests * n * 9          # cls int8 + lengths/row_of int32
        csr_pools = reach * (4 + 8)        # order_pool int32 + indptr_pool int64
        cand_pools = cands * (4 + 8)       # cands_pool int32 + keys_pool uint64
        tables = 5 * 8 * (num_dests + 1) + 4 * num_dests
        level_pool = 4 * num_dests * 24    # level_starts: one int32 per level
        total = dense + csr_pools + cand_pools + tables + level_pool
        if include_level_major:
            # nodes/sizes/cands/keys/starts/node_slot/row_of_edge stacks,
            # plus the per-level node_ptr/edge_ptr segment tables (two
            # int64[num_dests+1] per level; 24 levels matches the
            # level_pool allowance above).  The tables are what grows
            # with num_dests alone, so at paper scale (36K dests) they
            # are no longer noise — re-validated at N=36964 by
            # tests/runtime/test_guard_chaos.py.
            total += reach * (4 + 8 + 8 + 4) + cands * (4 + 8 + 8)
            total += 2 * 8 * (num_dests + 1) * 24
        return int(total)

    def view(self, slot: int) -> DestRouting:
        """Zero-copy :class:`DestRouting` for destination slot ``slot``."""
        o_lo, o_hi = int(self.order_ptr[slot]), int(self.order_ptr[slot + 1])
        l_lo, l_hi = int(self.level_ptr[slot]), int(self.level_ptr[slot + 1])
        i_lo, i_hi = int(self.indptr_ptr[slot]), int(self.indptr_ptr[slot + 1])
        c_lo, c_hi = int(self.cand_ptr[slot]), int(self.cand_ptr[slot + 1])
        return DestRouting(
            dest=int(self.dest_ids[slot]),
            cls=self.cls[slot],
            lengths=self.lengths[slot],
            order=self.order_pool[o_lo:o_hi],
            row_of=self.row_of[slot],
            level_starts=self.level_pool[l_lo:l_hi],
            indptr=self.indptr_pool[i_lo:i_hi],
            cands=self.cands_pool[c_lo:c_hi],
            _tie_keys=self.keys_pool[c_lo:c_hi],
            policy=self.policy,
        )

    def views(self) -> list[DestRouting]:
        """Zero-copy views for every destination slot, in slot order."""
        return [self.view(k) for k in range(self.num_dests)]

    # -- serialisation (the shared-memory data plane) ------------------

    def to_blocks(self) -> tuple[int, list[tuple[str, str, tuple[int, ...], int]]]:
        """Layout for packing into one flat buffer.

        Returns ``(total_bytes, [(name, dtype, shape, offset), ...])``
        with every offset 16-byte aligned.
        """
        layout: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for name, dtype in ARENA_FIELDS:
            arr = getattr(self, name)
            offset = (offset + 15) & ~15
            layout.append((name, dtype, arr.shape, offset))
            offset += arr.nbytes
        return offset, layout

    def pack_into(self, buf) -> list[tuple[str, str, tuple[int, ...], int]]:
        """Copy every pool into ``buf`` (a writable buffer); returns layout."""
        total, layout = self.to_blocks()
        if len(buf) < total:
            raise ValueError(f"buffer too small: {len(buf)} < {total}")
        for name, dtype, shape, offset in layout:
            dest = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
            dest[...] = getattr(self, name)
        return layout

    @classmethod
    def from_buffer(
        cls,
        graph_n: int,
        buf,
        layout: list[tuple[str, str, tuple[int, ...], int]],
        copy: bool = False,
        policy: str = "security_3rd",
        state_key: str | None = None,
        backend: str = "numpy",
    ) -> "RoutingArena":
        """Rebuild an arena over ``buf`` (zero-copy views unless ``copy``)."""
        arrays: dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in layout:
            arr = np.ndarray(tuple(shape), dtype=dtype, buffer=buf, offset=offset)
            arrays[name] = arr.copy() if copy else arr
        return cls(
            graph_n, arrays, policy=policy, state_key=state_key, backend=backend
        )

    # -- the batched kernel --------------------------------------------

    @property
    def num_levels(self) -> int:
        """Global level count (max path length over all destinations + 1)."""
        return len(self._level_major())

    def _level_major(self) -> list[_LevelSlice]:
        """Build (once) the level-major stacked layout over all slots."""
        if self._levels is not None:
            return self._levels
        num = self.num_dests
        max_levels = 0
        for k in range(num):
            max_levels = max(max_levels, int(self.level_ptr[k + 1] - self.level_ptr[k]) - 1)
        levels: list[_LevelSlice] = []
        for level in range(1, max_levels):
            node_chunks: list[np.ndarray] = []
            size_chunks: list[np.ndarray] = []
            cand_chunks: list[np.ndarray] = []
            key_chunks: list[np.ndarray] = []
            node_ptr = np.zeros(num + 1, dtype=np.int64)
            edge_ptr = np.zeros(num + 1, dtype=np.int64)
            for k in range(num):
                l_lo, l_hi = int(self.level_ptr[k]), int(self.level_ptr[k + 1])
                n_levels = l_hi - l_lo - 1
                if level >= n_levels:
                    node_ptr[k + 1] = node_ptr[k]
                    edge_ptr[k + 1] = edge_ptr[k]
                    continue
                lo = int(self.level_pool[l_lo + level])
                hi = int(self.level_pool[l_lo + level + 1])
                o_lo = int(self.order_ptr[k])
                i_lo = int(self.indptr_ptr[k])
                c_lo = int(self.cand_ptr[k])
                indptr = self.indptr_pool[i_lo + lo:i_lo + hi + 1]
                seg_lo, seg_hi = int(indptr[0]), int(indptr[-1])
                node_chunks.append(self.order_pool[o_lo + lo:o_lo + hi])
                size_chunks.append(np.diff(indptr))
                cand_chunks.append(self.cands_pool[c_lo + seg_lo:c_lo + seg_hi])
                key_chunks.append(self.keys_pool[c_lo + seg_lo:c_lo + seg_hi])
                node_ptr[k + 1] = node_ptr[k] + (hi - lo)
                edge_ptr[k + 1] = edge_ptr[k] + (seg_hi - seg_lo)
            nodes, _ = _concat_with_ptr(node_chunks, np.int32)
            sizes, _ = _concat_with_ptr(size_chunks, np.int64)
            cands, _ = _concat_with_ptr(cand_chunks, np.int32)
            keys, _ = _concat_with_ptr(key_chunks, np.uint64)
            counts = np.diff(node_ptr)
            node_slot = np.repeat(
                np.arange(num, dtype=np.int32), counts
            )
            starts = np.zeros(len(nodes), dtype=np.int64)
            if len(nodes):
                np.cumsum(sizes[:-1], out=starts[1:])
            row_of_edge = np.repeat(np.arange(len(nodes), dtype=np.int64), sizes)
            levels.append(
                _LevelSlice(
                    node_ptr=node_ptr,
                    nodes=nodes,
                    sizes=sizes,
                    edge_ptr=edge_ptr,
                    cands=cands,
                    keys=keys,
                    node_slot=node_slot,
                    starts=starts,
                    row_of_edge=row_of_edge,
                )
            )
        self._levels = levels
        return levels

    def all_slots(self) -> np.ndarray:
        """``arange(num_dests)`` — the full-batch slot vector."""
        return self._full_slots


def compute_trees_batched(
    arena: RoutingArena,
    slots: np.ndarray,
    node_secure: np.ndarray,
    breaks_ties: np.ndarray,
) -> BatchedTrees:
    """Resolve the routing trees of many destinations in one pass.

    Bit-identical to calling
    :func:`~repro.routing.fast_tree.compute_tree` per destination
    (asserted by the differential suite in
    ``tests/routing/test_arena.py``), but the Python-level loop runs
    over *global* path-length levels.  The per-level body dispatches
    through the arena's kernel backend
    (:mod:`repro.routing.backends`): ``numpy`` stacks the segments of
    every batched destination and resolves them with one set of numpy
    segment operations; the compiled tiers run the same selection as a
    native loop over the stacked arrays.  All backends are bit-identical
    (asserted by ``tests/routing/test_backends.py``).
    """
    slots = np.asarray(slots, dtype=np.int64)
    B = len(slots)
    n = arena.graph_n
    node_secure = np.ascontiguousarray(node_secure, dtype=bool)
    breaks_ties = np.ascontiguousarray(breaks_ties, dtype=bool)
    choice = np.full((B, n), -1, dtype=np.int32)
    secure = np.zeros((B, n), dtype=bool)
    any_secure = np.zeros((B, n), dtype=bool)
    dest_ids = arena.dest_ids[slots]
    secure[np.arange(B), dest_ids] = node_secure[dest_ids]

    backend, kernels = kernel_backends.kernels_for(arena.backend)
    full = B == arena.num_dests and np.array_equal(slots, arena.all_slots())
    levels = arena._level_major()
    registry = get_registry()
    if registry.enabled:
        registry.counter("routing.batched.calls").inc()
        registry.counter("routing.batched.trees").inc(B)
        registry.counter("routing.batched.levels").inc(len(levels))
        registry.counter(f"routing.backend.calls.{backend}").inc()

    for lvl in levels:
        if full:
            nodes, sizes = lvl.nodes, lvl.sizes
            cands, keys = lvl.cands, lvl.keys
            node_b = lvl.node_slot
            starts, row_of_edge = lvl.starts, lvl.row_of_edge
        else:
            nodes = gather_neighbors(lvl.node_ptr, lvl.nodes, slots)
            if not len(nodes):
                continue
            sizes = gather_neighbors(lvl.node_ptr, lvl.sizes, slots)
            cands = gather_neighbors(lvl.edge_ptr, lvl.cands, slots)
            keys = gather_neighbors(lvl.edge_ptr, lvl.keys, slots)
            counts = lvl.node_ptr[slots + 1] - lvl.node_ptr[slots]
            node_b = np.repeat(np.arange(B, dtype=np.int32), counts)
            starts = np.zeros(len(nodes), dtype=np.int64)
            np.cumsum(sizes[:-1], out=starts[1:])
            row_of_edge = np.repeat(np.arange(len(nodes), dtype=np.int64), sizes)
        if not len(nodes):
            continue

        kernels.trees_level(
            nodes, sizes, starts, row_of_edge, cands, keys, node_b,
            node_secure, breaks_ties, choice, secure, any_secure,
        )

    return BatchedTrees(
        dest_ids=dest_ids,
        slots=slots,
        choice=choice,
        secure=secure,
        any_secure=any_secure,
    )


def subtree_weights_batched(
    arena: RoutingArena,
    slots: np.ndarray,
    choice: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Batched :func:`~repro.routing.fast_tree.subtree_weights`.

    ``choice`` is the ``[B, n]`` matrix from
    :func:`compute_trees_batched`; returns the matching ``[B, n]``
    float64 subtree-weight matrix (row ``i`` excludes node weights of
    the nodes themselves, exactly like the per-destination kernel).
    Levels dispatch through the arena's kernel backend, like
    :func:`compute_trees_batched`.
    """
    slots = np.asarray(slots, dtype=np.int64)
    B = len(slots)
    n = arena.graph_n
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    choice = np.ascontiguousarray(choice, dtype=np.int32)
    w = np.zeros((B, n), dtype=np.float64)
    backend, kernels = kernel_backends.kernels_for(arena.backend)
    registry = get_registry()
    if registry.enabled:
        registry.counter(f"routing.backend.calls.{backend}").inc()
    full = B == arena.num_dests and np.array_equal(slots, arena.all_slots())
    for lvl in reversed(arena._level_major()):
        if full:
            nodes, node_b = lvl.nodes, lvl.node_slot
        else:
            nodes = gather_neighbors(lvl.node_ptr, lvl.nodes, slots)
            if not len(nodes):
                continue
            counts = lvl.node_ptr[slots + 1] - lvl.node_ptr[slots]
            node_b = np.repeat(np.arange(B, dtype=np.int32), counts)
        if not len(nodes):
            continue
        kernels.weights_level(nodes, node_b, choice, weights, w)
    return w
