"""Tests for early-adopter selection strategies."""

from __future__ import annotations

import pytest

from repro.core.adopters import (
    STRATEGIES,
    content_providers,
    cps_plus_top_isps,
    greedy_early_adopters,
    no_early_adopters,
    random_isps,
    top_degree_isps,
)
from repro.core.config import SimulationConfig
from repro.gadgets.hardness import SetCoverInstance, build_set_cover_network
from repro.topology.relationships import ASRole


class TestBasicStrategies:
    def test_none(self, small_graph):
        assert no_early_adopters(small_graph) == []

    def test_top_degree_sorted_and_isps(self, small_graph):
        top = top_degree_isps(small_graph, 5)
        assert len(top) == 5
        degrees = [small_graph.degree(a) for a in top]
        assert degrees == sorted(degrees, reverse=True)
        for asn in top:
            assert small_graph.role(asn) is ASRole.ISP

    def test_content_providers(self, small_graph):
        cps = content_providers(small_graph)
        assert len(cps) == 5
        for asn in cps:
            assert small_graph.role(asn) is ASRole.CP

    def test_cps_plus_top(self, small_graph):
        combo = cps_plus_top_isps(small_graph, 5)
        assert len(combo) == 10
        assert set(content_providers(small_graph)) <= set(combo)

    def test_random_deterministic_per_seed(self, small_graph):
        a = random_isps(small_graph, 8, seed=1)
        b = random_isps(small_graph, 8, seed=1)
        c = random_isps(small_graph, 8, seed=2)
        assert a == b
        assert a != c
        for asn in a:
            assert small_graph.role(asn) is ASRole.ISP

    def test_random_k_larger_than_population(self, small_graph):
        isps = [small_graph.asn(i) for i in small_graph.isp_indices]
        assert len(random_isps(small_graph, 10 ** 6)) == len(isps)

    def test_registry_complete(self):
        assert set(STRATEGIES) == {
            "none", "top-degree", "content-providers", "cps+top", "random", "greedy",
        }


class TestGreedy:
    def test_greedy_picks_best_gate(self):
        """On the set-cover gadget, greedy must find the best cover."""
        inst = SetCoverInstance(
            universe=(1, 2, 3, 4, 5),
            subsets=(frozenset({1, 2, 3}), frozenset({4, 5}), frozenset({5})),
            k=2,
        )
        net = build_set_cover_network(inst)
        chosen = greedy_early_adopters(
            net.graph,
            k=2,
            config=SimulationConfig(theta=0.0, max_rounds=10),
            candidate_asns=list(net.gates),
        )
        assert set(chosen) == {net.gates[0], net.gates[1]}

    def test_greedy_respects_k(self, small_graph, small_cache):
        chosen = greedy_early_adopters(
            small_graph,
            k=1,
            config=SimulationConfig(theta=0.10, max_rounds=5),
            candidate_asns=top_degree_isps(small_graph, 3),
            cache=small_cache,
        )
        assert len(chosen) == 1
