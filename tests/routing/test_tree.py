"""Tests for route classes, lengths and tiebreak-set construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.routing.compiled import CompiledGraph
from repro.routing.policy import RouteClass
from repro.routing.tree import (
    compute_dest_routing,
    route_classes_and_lengths,
    route_classes_and_lengths_scalar,
)
from repro.topology.graph import ASGraph

from tests.strategies import as_graphs


def chain_graph() -> ASGraph:
    """1 provides 2 provides 3; peers 2-4; 5 isolated."""
    g = ASGraph()
    for asn in (1, 2, 3, 4, 5):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)
    g.add_customer_provider(provider=2, customer=3)
    g.add_peering(2, 4)
    return g


class TestRouteClasses:
    def test_customer_routes_ascend(self):
        g = chain_graph()
        info = route_classes_and_lengths(g, g.index(3))
        assert info.cls[g.index(2)] == int(RouteClass.CUSTOMER)
        assert info.lengths[g.index(2)] == 1
        assert info.cls[g.index(1)] == int(RouteClass.CUSTOMER)
        assert info.lengths[g.index(1)] == 2

    def test_peer_route_single_hop(self):
        g = chain_graph()
        info = route_classes_and_lengths(g, g.index(3))
        # 4 reaches 3 via peer 2 (which has a customer route)
        assert info.cls[g.index(4)] == int(RouteClass.PEER)
        assert info.lengths[g.index(4)] == 2

    def test_provider_routes_descend(self):
        g = chain_graph()
        info = route_classes_and_lengths(g, g.index(1))
        assert info.cls[g.index(2)] == int(RouteClass.PROVIDER)
        assert info.cls[g.index(3)] == int(RouteClass.PROVIDER)
        assert info.lengths[g.index(3)] == 2

    def test_unreachable(self):
        g = chain_graph()
        info = route_classes_and_lengths(g, g.index(3))
        assert info.cls[g.index(5)] == int(RouteClass.UNREACHABLE)
        assert info.lengths[g.index(5)] == -1

    def test_self(self):
        g = chain_graph()
        info = route_classes_and_lengths(g, g.index(3))
        assert info.cls[g.index(3)] == int(RouteClass.SELF)
        assert info.lengths[g.index(3)] == 0

    def test_no_peer_route_via_peer_route(self):
        """GR2: a peer exports only customer routes to peers."""
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        g.add_peering(1, 2)
        g.add_peering(2, 3)
        info = route_classes_and_lengths(g, g.index(3))
        # 2 has a peer route; 1 must NOT learn it over the 1-2 peering
        assert info.cls[g.index(1)] == int(RouteClass.UNREACHABLE)

    def test_valley_free_no_route_down_then_up(self):
        """A provider route may not be re-exported to a provider."""
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(asn)
        # 2 is customer of both 1 and 3 (a valley between two providers)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=3, customer=2)
        info = route_classes_and_lengths(g, g.index(3))
        # 1 cannot reach 3 through its customer 2 (2's route is provider)
        assert info.cls[g.index(1)] == int(RouteClass.UNREACHABLE)

    def test_lp_beats_path_length(self):
        """A longer customer route beats a shorter peer/provider route."""
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        # 1 -> 2 -> 3 customer chain down to dest 3; 1 also peers with 3's
        # other provider 4 giving a shorter peer-ish option? build: dest=3,
        # 1 has customer route via 2 (length 2) and peer route via 4 (length 2)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=2, customer=3)
        g.add_customer_provider(provider=4, customer=3)
        g.add_peering(1, 4)
        info = route_classes_and_lengths(g, g.index(3))
        assert info.cls[g.index(1)] == int(RouteClass.CUSTOMER)

    @given(as_graphs())
    @settings(max_examples=60, deadline=None)
    def test_vectorised_matches_scalar(self, graph):
        cg = CompiledGraph.from_graph(graph)
        for dest in range(0, graph.n, max(1, graph.n // 5)):
            a = route_classes_and_lengths(graph, dest, cg)
            b = route_classes_and_lengths_scalar(graph, dest)
            assert (a.cls == b.cls).all()
            assert (a.lengths == b.lengths).all()


class TestDestRouting:
    def test_order_sorted_by_length(self, small_graph, small_cache):
        dr = small_cache.dest_routing(0)
        lengths = dr.lengths[dr.order]
        assert (np.diff(lengths) >= 0).all()
        assert dr.order[0] == 0

    def test_row_of_inverts_order(self, small_graph, small_cache):
        dr = small_cache.dest_routing(5)
        for row, node in enumerate(dr.order):
            assert dr.row_of[node] == row

    def test_tiebreak_candidates_one_level_down(self, small_cache):
        dr = small_cache.dest_routing(17)
        for node in dr.order[1:]:
            for cand in dr.tiebreak_set(int(node)):
                assert dr.lengths[cand] == dr.lengths[node] - 1

    def test_every_reachable_node_has_candidates(self, small_cache):
        dr = small_cache.dest_routing(3)
        sizes = dr.tiebreak_sizes()
        assert (sizes[1:] >= 1).all()

    def test_reverse_tiebreak_is_inverse(self, small_cache):
        dr = small_cache.dest_routing(29)
        for node in dr.order[1:]:
            for cand in dr.tiebreak_set(int(node)):
                assert int(node) in dr.dependents_of(int(cand))

    def test_unreachable_has_empty_tiebreak_set(self):
        g = chain_graph()
        dr = compute_dest_routing(g, g.index(3))
        assert len(dr.tiebreak_set(g.index(5))) == 0
