"""Exceptions of the routing package."""

from __future__ import annotations


class BackendUnavailable(RuntimeError):
    """A registered kernel backend cannot be imported or compiled.

    Raised by :func:`repro.routing.backends.load_backend` when a
    backend's dependencies are missing (no numba, no C compiler) or its
    compilation fails.  Registry callers rarely see it: resolution
    degrades to the numpy backend (a counted ladder rung) instead of
    propagating, so only a direct ``load_backend`` call — or numpy
    itself failing — surfaces the error.
    """
