"""Ablation (§8.3): routing policies vs deployment outcomes.

The paper speculates that shortest-path routing "would lead to overly
optimistic results" (shorter paths, maybe larger tiebreak sets) and
that widespread sticky primary/backup providers would make its analysis
"overly optimistic" in the other direction (no competition to exploit).

The bench runs the same deployment game under three routing substrates:

- ``gao-rexford``   — the Appendix-A model (baseline);
- ``sp-first``      — SP > LP ranking;
- ``sticky``        — Gao-Rexford with every multihomed AS pinned to
  its hash-preferred primary (tiebreak sets collapse to singletons).
"""

from __future__ import annotations

import numpy as np

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.experiments.report import format_table
from repro.routing.cache import RoutingCache
from repro.routing.tiebreak import collect_tiebreak_stats
from repro.routing.policy import restrict_to_primary

THETA = 0.05


def test_ablation_routing_policy(benchmark, env, capsys):
    def run_all():
        graph = env.graph
        adopters = cps_plus_top_isps(graph, 5)
        sticky = np.ones(graph.n, dtype=bool)
        caches = {
            "gao-rexford": env.cache,
            "sp-first": RoutingCache(graph, policy="sp-first"),
            "sticky": RoutingCache(
                graph, transform=lambda dr: restrict_to_primary(dr, sticky)
            ),
        }
        rows = []
        for name, cache in caches.items():
            stats = collect_tiebreak_stats(graph, dest_routing=cache.dest_routing)
            result = run_deployment(
                graph, adopters, SimulationConfig(theta=THETA), cache
            )
            rows.append((
                name,
                stats.mean,
                stats.multi_path_fraction,
                float(result.final_node_secure.mean()),
                result.num_rounds,
            ))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["policy", "mean tiebreak", "multi-path", "frac secure", "rounds"],
            [[n, f"{t:.2f}", f"{m:.2f}", f"{s:.3f}", r] for n, t, m, s, r in rows],
            title=f"Ablation: routing policy (theta={THETA:.0%})",
        ))
        print("  paper (§8.3): sticky primaries remove the competition "
              "SecP needs; deployment should collapse toward simplex-only")

    by = {name: (tb, multi, secure, rounds) for name, tb, multi, secure, rounds in rows}
    # no competition -> (much) less adoption than the baseline
    assert by["sticky"][2] <= by["gao-rexford"][2] + 1e-9
    assert by["sticky"][1] == 0.0  # all tiebreak sets singletons
