"""A small map-reduce engine (the paper's DryadLINQ substitute).

The paper ran its ``O(N^3)`` simulations by *mapping* per-destination
computations over a 200-machine DryadLINQ cluster and *reducing* the
per-destination subtrees into utilities (Appendix C.3).  This module
provides the same decomposition at laptop scale:

- :class:`SerialEngine` runs partitions in-process (default, and often
  fastest below a few thousand ASes);
- :class:`ProcessEngine` fans partitions out to forked worker
  processes; the mapped function must be picklable (a module-level
  function or a small callable class) and is shipped once per
  partition, and only the mapped results travel back.

Both implement :class:`MapReduceEngine` and are interchangeable; tests
assert result equality.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from typing import Callable, Sequence, TypeVar

from repro.parallel.partition import partition

T = TypeVar("T")
R = TypeVar("R")
A = TypeVar("A")

# fork keeps read-only graph structures shared copy-on-write; it is the
# right trade-off for this workload and available on the platforms the
# simulator targets (the paper's cluster was likewise shared-memory per
# node).  spawn would re-import and re-build every structure per worker.
_MP_CONTEXT = "fork"


class MapReduceEngine(abc.ABC):
    """Map a function over items, then fold the results."""

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order."""

    def map_reduce(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        reduce_fn: Callable[[A, R], A],
        initial: A,
    ) -> A:
        """Map then left-fold the mapped results in item order."""
        acc = initial
        for result in self.map(fn, items):
            acc = reduce_fn(acc, result)
        return acc


class SerialEngine(MapReduceEngine):
    """In-process engine; the baseline all backends must agree with."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


def _run_partition(args: tuple[Callable, list]) -> list:
    fn, part = args
    return [fn(item) for item in part]


class ProcessEngine(MapReduceEngine):
    """Fork-based process-pool engine.

    Parameters
    ----------
    workers:
        Number of worker processes (default: CPU count).
    partitions_per_worker:
        Oversubscription factor for load balancing.
    """

    def __init__(self, workers: int | None = None, partitions_per_worker: int = 4):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers or os.cpu_count() or 1
        self.partitions_per_worker = max(1, partitions_per_worker)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self.workers == 1 or len(items) <= 1:
            return SerialEngine().map(fn, items)
        indexed = list(enumerate(items))
        parts = partition(indexed, self.workers * self.partitions_per_worker)
        ctx = multiprocessing.get_context(_MP_CONTEXT)
        with ctx.Pool(processes=self.workers) as pool:
            mapped = pool.map(
                _run_partition,
                [(_indexed_fn(fn), part) for part in parts],
            )
        results: list[R | None] = [None] * len(items)
        for part_result in mapped:
            for idx, value in part_result:
                results[idx] = value
        return results  # type: ignore[return-value]


class _indexed_fn:
    """Picklable wrapper applying ``fn`` to (index, item) pairs."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, pair: tuple[int, object]) -> tuple[int, object]:
        idx, item = pair
        return idx, self.fn(item)


def default_engine(workers: int = 1) -> MapReduceEngine:
    """Engine for a worker count: serial for 1, processes otherwise."""
    if workers <= 1:
        return SerialEngine()
    return ProcessEngine(workers=workers)


class _DestRoutingBuilder:
    """Picklable map function: destination index -> DestRouting.

    Carries the graph and its compiled form; with the fork context the
    pickle cost is paid once per partition, and page sharing keeps the
    memory overhead low.
    """

    def __init__(self, graph, compiled):
        self.graph = graph
        self.compiled = compiled

    def __call__(self, dest: int):
        from repro.routing.tree import compute_dest_routing

        return compute_dest_routing(self.graph, dest, self.compiled)


def parallel_warm_cache(cache, workers: int = 1) -> None:
    """Warm a :class:`~repro.routing.cache.RoutingCache` with workers.

    The per-destination :class:`DestRouting` structures are independent,
    so this is a pure map; results are installed into the cache.
    """
    todo = [d for d in cache.destinations if d not in cache._routing]
    if not todo:
        return
    engine = default_engine(workers)
    build = _DestRoutingBuilder(cache.graph, cache.compiled)
    for dest, dr in zip(todo, engine.map(build, todo)):
        cache._routing[dest] = dr
