"""A small crash-tolerant map-reduce engine (the DryadLINQ substitute).

The paper ran its ``O(N^3)`` simulations by *mapping* per-destination
computations over a 200-machine DryadLINQ cluster and *reducing* the
per-destination subtrees into utilities (Appendix C.3); the cluster
framework restarted failed workers and re-executed failed partitions.
This module provides the same decomposition — and the same fault
story — at laptop scale:

- :class:`SerialEngine` runs partitions in-process (default, and often
  fastest below a few thousand ASes);
- :class:`ProcessEngine` fans partitions out to worker processes
  (forked where the platform allows, spawned otherwise) with
  per-partition timeouts, retry with exponential backoff on worker
  death, requeue of failed partitions at finer granularity, and a
  serial in-parent fallback for work that keeps failing — so one
  poisoned item or crashed worker is isolated and reported instead of
  killing the whole map.

Both implement :class:`MapReduceEngine` and are interchangeable; tests
assert result equality, including under injected faults
(:mod:`repro.runtime.faults`).
"""

from __future__ import annotations

import abc
import collections
import dataclasses
import logging
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import warnings
import weakref
from typing import Callable, Sequence, TypeVar

from repro.parallel.partition import partition, partitions_for_budget
from repro.runtime.errors import EngineShutdownError, ItemFailedError
from repro.runtime.guard import current_guard
from repro.runtime.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.telemetry.metrics import get_registry
from repro.telemetry.worker import finish_capture, merge_worker_snapshot, start_capture

log = logging.getLogger(__name__)

#: Seconds a worker gets to deliver its result after its pipe polls
#: ready.  The pipe signalling readability and then never completing
#: the message means the worker died mid-send; 30s is orders of
#: magnitude above a pipe write, so hitting it is a death, not a race.
_RESULT_GRACE_SECONDS = 30.0

#: Fraction of the memory budget the warm path may hold in in-flight
#: partition structures (the rest covers the final pooled arena and
#: the parent's own copies during backhaul).
_WARM_SHARE_DIVISOR = 4

T = TypeVar("T")
R = TypeVar("R")
A = TypeVar("A")

#: Seconds a graceful shutdown waits for in-flight partitions to finish
#: before terminating their workers outright.  In-flight partitions are
#: small (seconds of work) so honest drains complete well inside this.
_SHUTDOWN_DRAIN_GRACE = 30.0

#: Engines with a map currently running, so a process-wide shutdown
#: request (SIGTERM handler, daemon stop) can reach all of them without
#: threading engine references through every call chain.
_active_engines: "weakref.WeakSet[ProcessEngine]" = weakref.WeakSet()


def shutdown_active_engines() -> int:
    """Request a graceful stop of every engine with a live map.

    Called from signal handlers and the simulation service's shutdown
    path.  Each engine stops dispatching, drains (or terminates) its
    in-flight partitions, and raises
    :class:`~repro.runtime.errors.EngineShutdownError` out of its
    ``map`` — so no worker process or shared-memory segment outlives
    the daemon.  Returns the number of engines signalled.
    """
    engines = list(_active_engines)
    for engine in engines:
        engine.request_shutdown()
    return len(engines)


def _discard_abandoned_payload(payload: object) -> None:
    """Unlink shm segments riding in results nobody will ever consume.

    A drained partition may have published its arena as a shared-memory
    segment whose handle was about to cross the result pipe; once the
    map raises, no consumer will attach-and-unlink it, so the drain
    releases it here instead of leaking it for the daemon's lifetime.
    """
    try:
        from repro.parallel.shm import ArenaHandle, discard_published_arena
    except ImportError:  # pragma: no cover - shm module always importable
        return
    if not isinstance(payload, list):
        return
    for entry in payload:
        value = entry[1] if isinstance(entry, tuple) and len(entry) == 2 else entry
        handle = None
        if isinstance(value, ArenaHandle):
            handle = value
        elif (
            isinstance(value, tuple)
            and len(value) == 2
            and isinstance(value[1], ArenaHandle)
        ):
            handle = value[1]
        if handle is not None:
            discard_published_arena(handle)


#: start methods in preference order: fork keeps read-only graph
#: structures shared copy-on-write (the right trade-off for this
#: workload — spawn re-imports and re-pickles every structure per
#: worker), but not every platform has it.
_START_METHOD_PREFERENCE = ("fork", "forkserver", "spawn")


def choose_start_method() -> str | None:
    """Best available multiprocessing start method (None: serial only)."""
    available = multiprocessing.get_all_start_methods()
    if _START_METHOD_PREFERENCE[0] in available:
        return "fork"
    for method in _START_METHOD_PREFERENCE[1:]:
        if method in available:
            warnings.warn(
                f"fork start method unavailable on this platform; "
                f"falling back to {method!r} (workers re-import state, "
                f"mapped functions must be picklable)",
                RuntimeWarning,
                stacklevel=3,
            )
            return method
    warnings.warn(
        "no multiprocessing start method available; "
        "ProcessEngine will run maps serially",
        RuntimeWarning,
        stacklevel=3,
    )
    return None


class MapReduceEngine(abc.ABC):
    """Map a function over items, then fold the results."""

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order."""

    def map_reduce(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        reduce_fn: Callable[[A, R], A],
        initial: A,
    ) -> A:
        """Map then left-fold the mapped results in item order."""
        acc = initial
        for result in self.map(fn, items):
            acc = reduce_fn(acc, result)
        return acc


class SerialEngine(MapReduceEngine):
    """In-process engine; the baseline all backends must agree with."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


@dataclasses.dataclass
class MapStats:
    """Fault accounting for the most recent :meth:`ProcessEngine.map`."""

    dispatched: int = 0        # partition tasks handed to workers
    worker_errors: int = 0     # fn raised inside a worker
    worker_deaths: int = 0     # worker exited abnormally (crash/kill)
    timeouts: int = 0          # partitions reaped at the deadline
    retries: int = 0           # failed partitions requeued
    splits: int = 0            # requeues that split the partition
    serial_fallback_items: int = 0  # items degraded to in-parent runs
    failed_items: int = 0      # items that failed even serially


@dataclasses.dataclass
class ItemFailure:
    """Placed in the result list for a failed item (``on_error="collect"``)."""

    index: int
    item: object
    error: str

    def __bool__(self) -> bool:  # failed slots are falsy for easy filtering
        return False


@dataclasses.dataclass
class _Task:
    """A partition of (original index, item) pairs awaiting dispatch."""

    pairs: list[tuple[int, object]]
    attempts: int = 0
    not_before: float = 0.0
    enqueued_at: float = dataclasses.field(default_factory=time.monotonic)


def _child_main(conn, fn, pairs) -> None:
    """Worker body: map ``fn`` over the partition, ship one message back.

    When the parent's telemetry was enabled (and the fork start method
    carried that state over), the worker records into a fresh registry
    and ships its snapshot back with the results so the parent can
    aggregate per-worker counters and histograms.
    """
    try:
        capture = start_capture()
        out = [(idx, fn(item)) for idx, item in pairs]
        conn.send(("ok", out, finish_capture(capture)))
    except BaseException as exc:  # report, never hang the parent
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}", None))
        except OSError:  # parent gone / pipe closed: nothing left to report to
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """One live partition: a child process plus its result pipe."""

    def __init__(self, ctx, fn, task: _Task, timeout: float | None):
        self.task = task
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_child_main, args=(child_conn, fn, task.pairs), daemon=True
        )
        self.process.start()
        child_conn.close()  # parent keeps only the read end
        self.deadline = None if timeout is None else time.monotonic() + timeout

    def reap(self) -> tuple[str, object, dict | None]:
        """Read the worker's message.

        Returns ``("ok", pairs, snapshot)``, ``("err", msg, None)`` or
        ``("dead", msg, None)``; ``snapshot`` is the worker's telemetry
        snapshot (None when telemetry is disabled or unavailable).
        """
        try:
            if not self.conn.poll(_RESULT_GRACE_SECONDS):
                self.terminate()
                return (
                    "dead",
                    "worker's pipe signalled a result that never arrived "
                    f"within {_RESULT_GRACE_SECONDS:g}s",
                    None,
                )
            kind, payload, snapshot = self.conn.recv()  # repro-lint: disable=RPR011 -- bounded by the poll() above
        except (EOFError, OSError):
            self.terminate()
            return (
                "dead",
                f"worker exited abnormally (exitcode {self.process.exitcode})",
                None,
            )
        self.process.join(timeout=10)
        if self.process.is_alive():  # sent a result but won't exit
            self.terminate()
        self.conn.close()
        return (kind, payload, snapshot)

    def terminate(self) -> None:
        """Force the worker down (terminate, then kill) and close the pipe."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass


class ProcessEngine(MapReduceEngine):
    """Crash-tolerant process-pool engine.

    Partitions are dispatched asynchronously to one child process each
    (at most ``workers`` live at a time).  A partition whose worker
    raises, dies, or overruns ``partition_timeout`` is requeued with
    exponential backoff, split in half to isolate the failing item;
    once a task exhausts ``retry.max_attempts`` its items run serially
    in the parent.  An item that fails even there raises
    :class:`~repro.runtime.errors.ItemFailedError` (``on_error="raise"``,
    default) or yields an :class:`ItemFailure` in its result slot
    (``on_error="collect"``).

    Parameters
    ----------
    workers:
        Number of worker processes (default: CPU count).
    partitions_per_worker:
        Oversubscription factor for load balancing.
    retry:
        :class:`~repro.runtime.retry.RetryPolicy` for failed partitions.
    partition_timeout:
        Seconds before a partition's worker is presumed hung and killed
        (None: wait forever).
    on_error:
        ``"raise"`` or ``"collect"`` for items that fail serially.
    start_method:
        Override the multiprocessing start method (default: best
        available; serial fallback with a warning when there is none).
    """

    def __init__(
        self,
        workers: int | None = None,
        partitions_per_worker: int = 4,
        retry: RetryPolicy | None = None,
        partition_timeout: float | None = None,
        on_error: str = "raise",
        start_method: str | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if on_error not in ("raise", "collect"):
            raise ValueError(f"on_error must be 'raise' or 'collect', got {on_error!r}")
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise ValueError(
                    f"start method {start_method!r} unavailable (have {available})"
                )
        self.workers = workers or os.cpu_count() or 1
        self.partitions_per_worker = max(1, partitions_per_worker)
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.partition_timeout = partition_timeout
        self.on_error = on_error
        self.start_method = start_method if start_method is not None else choose_start_method()
        self.last_stats = MapStats()
        self._shutdown = threading.Event()

    def request_shutdown(self) -> None:
        """Ask a running :meth:`map` to stop at its next dispatch cycle.

        Thread- and signal-safe.  The map stops handing out new
        partitions, drains in-flight ones within a bounded grace (then
        terminates stragglers), releases any abandoned shared-memory
        segments, and raises
        :class:`~repro.runtime.errors.EngineShutdownError`.  A request
        made while no map is running stops the next one immediately.
        """
        self._shutdown.set()

    @property
    def shutdown_requested(self) -> bool:
        """True once :meth:`request_shutdown` has been called."""
        return self._shutdown.is_set()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        self.last_stats = stats = MapStats()
        if self.workers == 1 or len(items) <= 1 or self.start_method is None:
            return SerialEngine().map(fn, items)
        ctx = multiprocessing.get_context(self.start_method)
        indexed = list(enumerate(items))
        parts = partition(indexed, self.workers * self.partitions_per_worker)
        queue: collections.deque[_Task] = collections.deque(
            _Task(list(p)) for p in parts
        )
        results: list = [None] * len(items)
        live: list[_Worker] = []
        guard = current_guard()
        _active_engines.add(self)
        try:
            while queue or live:
                if self._shutdown.is_set():
                    pending = self._drain_for_shutdown(queue, live)
                    self._publish_stats(stats)
                    raise EngineShutdownError(pending)
                # the finally-terminate below reaps every live worker,
                # so an expired deadline leaves no orphan processes
                guard.check_deadline("parallel map loop")
                self._dispatch(ctx, fn, queue, live, results, stats)
                self._reap(queue, live, results, stats)
        finally:
            _active_engines.discard(self)
            for worker in live:
                worker.terminate()
        self._publish_stats(stats)
        return results

    def _drain_for_shutdown(
        self, queue: "collections.deque[_Task]", live: list[_Worker]
    ) -> int:
        """Drain in-flight partitions, terminate stragglers, count losses.

        In-flight workers get :data:`_SHUTDOWN_DRAIN_GRACE` (capped to
        any deadline budget) to deliver; whatever they deliver is
        discarded — with shared-memory segments explicitly unlinked —
        because the interrupted map returns nothing.  Returns the number
        of items left unfinished (queued + in-flight).
        """
        pending = sum(len(t.pairs) for t in queue)
        pending += sum(len(w.task.pairs) for w in live)
        log.warning(
            "shutdown requested: draining %d in-flight partition(s), "
            "abandoning %d queued task(s)",
            len(live), len(queue),
        )
        get_registry().counter("engine.shutdowns").inc()
        grace = current_guard().cap_timeout(_SHUTDOWN_DRAIN_GRACE)
        drain_deadline = time.monotonic() + (grace if grace is not None else 0.0)
        for worker in live:
            remaining = drain_deadline - time.monotonic()
            if remaining > 0 and worker.conn.poll(remaining):
                kind, payload, snapshot = worker.reap()
                if kind == "ok":
                    merge_worker_snapshot(snapshot)
                    _discard_abandoned_payload(payload)
            else:
                worker.terminate()
        live.clear()
        queue.clear()
        return pending

    def _publish_stats(self, stats: MapStats) -> None:
        """Fold this map's fault accounting into the active registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("engine.maps").inc()
        for field in dataclasses.fields(MapStats):
            registry.counter(f"engine.{field.name}").inc(getattr(stats, field.name))

    # -- dispatch -----------------------------------------------------

    def _dispatch(self, ctx, fn, queue, live, results, stats) -> None:
        """Start workers for every ready task while slots are free."""
        now = time.monotonic()
        queue_wait = get_registry().histogram("engine.partition_queue_wait_seconds")
        guard = current_guard()
        held: list[_Task] = []
        while queue and len(live) < self.workers:
            task = queue.popleft()
            if task.not_before > now:
                held.append(task)
                continue
            if task.attempts >= self.retry.max_attempts:
                self._run_serially(fn, task, results, stats)
                continue
            queue_wait.observe(time.monotonic() - task.enqueued_at)
            # a deadline tightens every partition's timeout to the
            # remaining budget: a hung worker cannot outlive it
            live.append(_Worker(ctx, fn, task, guard.cap_timeout(self.partition_timeout)))
            stats.dispatched += 1
        queue.extendleft(reversed(held))

    def _run_serially(self, fn, task: _Task, results, stats) -> None:
        """Graceful degradation: run a repeatedly-failing task in-parent."""
        log.warning(
            "partition of %d item(s) failed %d time(s); running serially in parent",
            len(task.pairs), task.attempts,
        )
        stats.serial_fallback_items += len(task.pairs)
        guard = current_guard()
        for idx, item in task.pairs:
            guard.check_deadline("serial in-parent fallback")
            try:
                results[idx] = fn(item)
            except Exception as exc:
                stats.failed_items += 1
                if self.on_error == "raise":
                    raise ItemFailedError(idx, item, exc) from exc
                log.error("item %d (%r) failed after retries: %s", idx, item, exc)
                results[idx] = ItemFailure(idx, item, f"{type(exc).__name__}: {exc}")

    # -- reaping ------------------------------------------------------

    def _reap(self, queue, live, results, stats) -> None:
        """Wait for worker messages, deadlines, or backoff expiries."""
        if not live:
            if queue:  # everything queued is backing off; wait it out
                pause = min(t.not_before for t in queue) - time.monotonic()
                if pause > 0:
                    self.retry.sleep(pause)
            return
        now = time.monotonic()
        next_wake = min(
            (w.deadline for w in live if w.deadline is not None), default=None
        )
        backoffs = [t.not_before for t in queue if t.not_before > now]
        if backoffs:
            soonest = min(backoffs)
            next_wake = soonest if next_wake is None else min(next_wake, soonest)
        wait_timeout = None if next_wake is None else max(0.0, next_wake - now)
        ready = set(
            multiprocessing.connection.wait([w.conn for w in live], timeout=wait_timeout)
        )
        now = time.monotonic()
        survivors: list[_Worker] = []
        for worker in live:
            if worker.conn in ready:
                kind, payload, snapshot = worker.reap()
                if kind == "ok":
                    for idx, value in payload:
                        results[idx] = value
                    merge_worker_snapshot(snapshot)
                else:
                    if kind == "err":
                        stats.worker_errors += 1
                    else:
                        stats.worker_deaths += 1
                    self._requeue(worker.task, queue, stats, str(payload))
            elif worker.deadline is not None and now >= worker.deadline:
                worker.terminate()
                stats.timeouts += 1
                self._requeue(
                    worker.task, queue, stats,
                    f"partition exceeded {self.partition_timeout}s timeout",
                )
            else:
                survivors.append(worker)
        live[:] = survivors

    def _requeue(self, task: _Task, queue, stats, reason: str) -> None:
        """Back off and requeue a failed partition, splitting to isolate."""
        attempts = task.attempts + 1
        not_before = time.monotonic() + self.retry.delay(attempts)
        stats.retries += 1
        if len(task.pairs) > 1:
            stats.splits += 1
            mid = len(task.pairs) // 2
            halves = (task.pairs[:mid], task.pairs[mid:])
            log.warning(
                "partition of %d item(s) failed (%s); splitting and retrying "
                "(attempt %d/%d)",
                len(task.pairs), reason, attempts, self.retry.max_attempts,
            )
            for half in halves:
                queue.append(_Task(half, attempts, not_before))
        else:
            log.warning(
                "item partition failed (%s); retrying (attempt %d/%d)",
                reason, attempts, self.retry.max_attempts,
            )
            queue.append(_Task(task.pairs, attempts, not_before))


def default_engine(workers: int = 1) -> MapReduceEngine:
    """Engine for a worker count: serial for 1, processes otherwise."""
    if workers <= 1:
        return SerialEngine()
    return ProcessEngine(workers=workers)


class _DestRoutingBuilder:
    """Picklable map function: destination index -> DestRouting.

    Carries the graph, its compiled form, the cache's policy name,
    transform, and (for state-dependent policies) the deployment state
    the structures must be built under; with the fork context the
    pickle cost is paid once per partition, and page sharing keeps the
    memory overhead low.
    """

    def __init__(
        self,
        graph,
        compiled,
        policy: str = "security_3rd",
        transform=None,
        node_secure=None,
        breaks_ties=None,
        backend: str | None = None,
    ):
        self.graph = graph
        self.compiled = compiled
        self.policy = policy
        self.transform = transform
        self.node_secure = node_secure
        self.breaks_ties = breaks_ties
        # the backend travels by *name* (plain pickle data); the worker
        # process resolves it locally and may degrade to numpy there
        self.backend = backend

    def build_many(self, dests):
        from repro.routing.policy import get_policy

        routings = get_policy(self.policy).build_many(
            self.graph,
            dests,
            self.compiled,
            node_secure=self.node_secure,
            breaks_ties=self.breaks_ties,
            backend=self.backend,
        )
        if self.transform is not None:
            routings = [self.transform(dr) for dr in routings]
            for dr in routings:
                dr.policy = get_policy(self.policy).name
        return routings

    def __call__(self, dest: int):
        registry = get_registry()
        with registry.histogram("routing.tree_build_seconds").time():
            dr = self.build_many([dest])[0]
        registry.counter("routing.tree_builds").inc()
        return dr


class _PartitionArenaBuilder:
    """Map function over destination *chunks* for the shm warm path.

    The worker builds every :class:`DestRouting` of its chunk, packs
    them into a partition :class:`~repro.routing.arena.RoutingArena`,
    publishes the arena as a shared-memory segment, and returns only a
    pipe-sized :class:`~repro.parallel.shm.ArenaHandle` — no tree is
    ever pickled through the result pipe.  When the worker cannot get a
    segment it degrades to ``("pickle", dests, routings)`` and the
    fallback is counted (``parallel.shm.fallbacks``).
    """

    def __init__(
        self,
        graph,
        compiled,
        policy: str = "security_3rd",
        transform=None,
        node_secure=None,
        breaks_ties=None,
        state_key=None,
        backend: str | None = None,
    ):
        self.build = _DestRoutingBuilder(
            graph, compiled, policy, transform, node_secure, breaks_ties,
            backend=backend,
        )
        self.state_key = state_key
        self.backend = backend

    def __call__(self, dests: tuple[int, ...]):
        from repro.parallel.shm import publish_arena
        from repro.routing.arena import RoutingArena
        from repro.routing.policy import get_policy

        registry = get_registry()
        hist = registry.histogram("routing.tree_build_seconds")
        start = time.perf_counter()
        routings = self.build.build_many(list(dests))
        per_tree = (time.perf_counter() - start) / max(len(dests), 1)
        for _ in dests:  # one observation per tree, as on the serial path
            hist.observe(per_tree)
        registry.counter("routing.tree_builds").inc(len(dests))
        arena = RoutingArena.build(
            self.build.graph.n,
            list(dests),
            routings,
            policy=get_policy(self.build.policy).name,
            state_key=self.state_key,
            backend=self.backend or "numpy",
        )
        published = publish_arena(arena, dests=tuple(dests))
        if published is None:
            return ("pickle", tuple(dests), routings)
        handle, segment = published
        segment.close()  # keep the name alive; the parent unlinks
        return ("shm", handle)


def parallel_warm_cache(cache, workers: int = 1, transport: str = "auto") -> None:
    """Warm a :class:`~repro.routing.cache.RoutingCache` with workers.

    The per-destination :class:`DestRouting` structures are independent,
    so this is a pure map; results are installed into the cache through
    its public :meth:`~repro.routing.cache.RoutingCache.install` API.

    ``transport`` selects how results travel back from workers:

    - ``"shm"``: workers pack each destination partition into a
      shared-memory arena and send only the segment handle
      (zero-copy backhaul, no pickled trees);
    - ``"pickle"``: classic per-destination result pickling;
    - ``"auto"`` (default): shm whenever a multi-process map will
      actually run and shared memory is importable.

    Either way a partition whose segment cannot be attached (or whose
    worker could not create one) falls back to the pickle path — warm
    never fails because shared memory did.
    """
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(f"transport must be 'auto', 'shm' or 'pickle', got {transport!r}")
    todo = cache.pending_destinations()
    if not todo:
        return
    guard = current_guard()
    engine = default_engine(workers)
    num_partitions = None
    if isinstance(engine, ProcessEngine):
        engine, num_partitions = _plan_warm_engine(
            guard, engine, len(todo), cache.graph.n
        )
    start = time.perf_counter()
    multi = (
        isinstance(engine, ProcessEngine)
        and engine.start_method is not None
        and len(todo) > 1
    )
    if transport != "pickle" and multi:
        from repro.parallel.shm import shm_available

        if shm_available():
            _warm_via_shm(cache, engine, todo, num_partitions=num_partitions)
            cache.note_warm_time(time.perf_counter() - start)
            return
        if transport == "shm":
            from repro.parallel.shm import _note_fallback

            _note_fallback("multiprocessing.shared_memory not importable")
            guard.degrade(
                "shm_to_pickle",
                "shared memory requested but multiprocessing.shared_memory "
                "is not importable",
            )
    node_secure, breaks_ties = cache.current_state()
    build = _DestRoutingBuilder(
        cache.graph, cache.compiled, cache.policy.name, cache.transform,
        node_secure, breaks_ties, backend=cache.backend_name,
    )
    for dest, dr in zip(todo, engine.map(build, todo)):
        cache.install(dest, dr)
    cache.note_warm_time(time.perf_counter() - start)


def _plan_warm_engine(
    guard, engine: ProcessEngine, num_dests: int, n: int
) -> tuple[MapReduceEngine, int | None]:
    """Fit the warm map's partition count and worker count to the budget.

    In-flight memory during a parallel warm is ``workers x (one
    partition's structures)`` on top of the final pooled arena, so the
    plan (a) raises the partition count until one partition's forecast
    fits the warm share of the budget, then (b) halves the worker count
    until the concurrent total fits — each step a visible ladder rung.
    Returns the (possibly downgraded) engine and the partition count
    (``None``: engine default).
    """
    default_parts = engine.workers * engine.partitions_per_worker
    if guard.memory is None or num_dests <= 1:
        return engine, None
    from repro.routing.arena import RoutingArena

    total = RoutingArena.estimate_bytes(num_dests, n)
    per_dest = max(1, total // num_dests)
    share = guard.memory.headroom() // _WARM_SHARE_DIVISOR
    num_parts = partitions_for_budget(num_dests, default_parts, per_dest, share)
    if num_parts > default_parts:
        guard.degrade(
            "chunked_batches",
            f"cache warm: forecast ~{total / 2**20:.0f} MiB for {num_dests} "
            f"destinations; raising partition count {default_parts} -> "
            f"{num_parts} so one partition fits the budget share",
        )
    per_partition = per_dest * max(1, -(-num_dests // num_parts))
    workers = guard.plan_workers(
        engine.workers, per_worker_bytes=per_partition, base_bytes=total,
        what="cache warm",
    )
    if workers != engine.workers:
        return default_engine(workers), num_parts
    return engine, num_parts


def _warm_via_shm(
    cache, engine: ProcessEngine, todo: list[int], num_partitions: int | None = None
) -> None:
    """Shared-memory warm backhaul: chunk -> worker arena -> handle."""
    from repro.parallel.shm import consume_published_arena, ensure_tracker_running

    # must happen before the first fork: workers that lazily start
    # their own resource tracker get their segments unlinked at exit
    ensure_tracker_running()
    if num_partitions is None:
        num_partitions = engine.workers * engine.partitions_per_worker
    chunks = [tuple(c) for c in partition(todo, num_partitions)]
    node_secure, breaks_ties = cache.current_state()
    build = _PartitionArenaBuilder(
        cache.graph, cache.compiled, cache.policy.name, cache.transform,
        node_secure, breaks_ties, cache.state_key,
        backend=cache.backend_name,
    )
    pickled_partitions = 0
    for result in engine.map(build, chunks):
        kind = result[0]
        if kind == "shm":
            handle = result[1]
            arena = consume_published_arena(handle)
            if arena is None:
                # segment vanished (publisher crashed mid-handoff):
                # recompute the partition in-parent from the handle
                for dest in handle.dests:
                    cache.dest_routing(dest)
                continue
            for k, dest in enumerate(handle.dests):
                cache.install(int(dest), arena.view(k))
        else:
            _, dests, routings = result
            pickled_partitions += 1
            for dest, dr in zip(dests, routings):
                cache.install(int(dest), dr)
    if pickled_partitions:
        current_guard().degrade(
            "shm_to_pickle",
            f"{pickled_partitions} warm partition(s) fell back to pickled "
            "trees (workers could not publish shared-memory segments)",
        )
        log.warning(
            "%d warm partition(s) fell back to pickled trees (no shared memory)",
            pickled_partitions,
        )


class _FlipProjector:
    """Map function: ``(isp, turning_on)`` -> Projection.

    Carries the cache, deriver and current round data.  Under the fork
    start method nothing here is pickled — children see the parent's
    structures copy-on-write, and only the (index, bool) jobs and the
    scalar-sized :class:`~repro.core.projection.Projection` results
    cross the pipes.
    """

    def __init__(self, cache, deriver, rd, model, projection):
        self.cache = cache
        self.deriver = deriver
        self.rd = rd
        self.model = model
        self.projection = projection

    def __call__(self, job: tuple[int, bool]):
        from repro.core.projection import project_flip

        isp, turning_on = job
        return project_flip(
            self.cache, self.deriver, self.rd, int(isp),
            turning_on=bool(turning_on), model=self.model, engine=self.projection,
        )


def parallel_project_flips(
    cache, deriver, rd, jobs, model, projection, workers: int = 1
) -> list:
    """Project many candidate flips, fanned out over worker processes.

    ``jobs`` is a sequence of ``(isp, turning_on)`` pairs; returns the
    matching :class:`~repro.core.projection.Projection` list.  Requires
    the ``fork`` start method (routing state is shared copy-on-write;
    pickling a whole round's trees to spawned workers would cost more
    than it saves) — anything else degrades to a serial loop with a
    one-line warning.
    """
    projector = _FlipProjector(cache, deriver, rd, model, projection)
    if workers <= 1 or len(jobs) <= 1:
        return [projector(job) for job in jobs]
    if choose_start_method() != "fork":
        log.warning(
            "parallel projection needs the fork start method; running %d "
            "projections serially", len(jobs),
        )
        return [projector(job) for job in jobs]
    cache.ensure_arena()  # share the pooled arena pages, not dict shards
    engine = ProcessEngine(workers=workers, start_method="fork")
    return engine.map(projector, list(jobs))
