# Convenience targets; everything is plain pip + pytest underneath.

.PHONY: install test test-resilience bench bench-json bench-compare bench-large examples lint-clean

# Compare the oldest and newest BENCH_*.json snapshots (override with
# BENCH_OLD=... BENCH_NEW=...); fails on >10% kernel regressions.
BENCH_OLD ?= $(firstword $(sort $(wildcard BENCH_*.json)))
BENCH_NEW ?= $(lastword $(sort $(wildcard BENCH_*.json)))

install:
	pip install -e .

test:
	pytest tests/

# Fault-injection and checkpoint/resume tests only (the resilience layer).
test-resilience:
	pytest tests/runtime tests/parallel/test_faults.py tests/experiments/test_resume.py

bench:
	pytest benchmarks/ --benchmark-only

# Seed/extend the perf trajectory: kernel benches only, machine-readable,
# dated so successive runs line up chronologically at the repo root.
bench-json:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
		pytest $(wildcard benchmarks/bench_kernel_*.py) --benchmark-only \
		--benchmark-json=BENCH_$(shell date +%Y%m%d).json

bench-compare:
	python scripts/bench_compare.py $(BENCH_OLD) $(BENCH_NEW)

bench-large:
	REPRO_BENCH_N=2000 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py 400
	python examples/early_adopter_comparison.py 300
	python examples/secure_routing_attacks.py
	python examples/buyers_remorse_and_oscillation.py
	python examples/custom_topology.py
	python examples/partial_deployment_security.py 250
	python examples/model_sensitivity.py 250
