"""ResultCache: digest-keyed hits, LRU byte-budget eviction, telemetry."""

from __future__ import annotations

import threading

import pytest

from repro import telemetry
from repro.experiments.sweeps import SweepCell
from repro.service.cache import _CELL_BYTES, CellView, ResultCache
from repro.telemetry.metrics import set_registry


def make_cell(adopters: str = "top-5", theta: float = 0.05) -> SweepCell:
    return SweepCell(
        adopters=adopters, theta=theta, stub_breaks_ties=True,
        fraction_secure_ases=0.5, fraction_secure_isps=0.4,
        fraction_isps_by_market=0.3, fraction_secure_paths=0.6,
        f_squared=0.25, num_rounds=7, outcome="terminated",
    )


class _FakeArena:
    """Just enough surface for the cache's accounting (nbytes, state_key)."""

    def __init__(self, nbytes: int, state_key: str | None = None):
        self.nbytes = nbytes
        self.state_key = state_key


class TestCells:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get_cell("scope", "top-5", 0.05) is None
        cell = make_cell()
        cache.put_cell("scope", "top-5", 0.05, cell)
        assert cache.get_cell("scope", "top-5", 0.05) is cell
        stats = cache.stats()
        assert (stats.cell_hits, stats.cell_misses) == (1, 1)

    def test_scope_isolates_otherwise_equal_keys(self):
        cache = ResultCache()
        cache.put_cell("scope-a", "top-5", 0.05, make_cell())
        assert cache.get_cell("scope-b", "top-5", 0.05) is None

    def test_cell_view_binds_a_scope(self):
        cache = ResultCache()
        view = cache.cell_view("scope-a")
        assert isinstance(view, CellView)
        cell = make_cell()
        view.put("none", 0.0, cell)
        assert view.get("none", 0.0) is cell
        assert cache.cell_view("scope-b").get("none", 0.0) is None


class TestEviction:
    def test_lru_eviction_under_byte_budget(self):
        cache = ResultCache(budget_bytes=2 * _CELL_BYTES)
        for i, theta in enumerate((0.0, 0.1, 0.2)):
            cache.put_cell("s", "none", theta, make_cell("none", theta))
        # the oldest entry fell out; the two newest survive
        assert cache.get_cell("s", "none", 0.0) is None
        assert cache.get_cell("s", "none", 0.1) is not None
        assert cache.get_cell("s", "none", 0.2) is not None
        assert cache.stats().evictions == 1
        assert cache.stats().bytes_used <= cache.budget_bytes

    def test_access_refreshes_lru_order(self):
        cache = ResultCache(budget_bytes=2 * _CELL_BYTES)
        cache.put_cell("s", "none", 0.0, make_cell("none", 0.0))
        cache.put_cell("s", "none", 0.1, make_cell("none", 0.1))
        cache.get_cell("s", "none", 0.0)           # refresh the older entry
        cache.put_cell("s", "none", 0.2, make_cell("none", 0.2))
        assert cache.get_cell("s", "none", 0.0) is not None  # survived
        assert cache.get_cell("s", "none", 0.1) is None       # evicted

    def test_arena_eviction_charges_real_bytes(self):
        cache = ResultCache(budget_bytes=1000)
        cache.put_arena("env-a", _FakeArena(nbytes=600))
        cache.put_arena("env-b", _FakeArena(nbytes=600))
        assert cache.get_arena("env-a") is None      # evicted by env-b
        assert cache.get_arena("env-b") is not None
        assert cache.stats().bytes_used <= 1000

    def test_single_oversized_entry_is_kept(self):
        # eviction never empties the cache entirely: one entry larger
        # than the whole budget still caches (it is strictly better
        # than recomputing it every request)
        cache = ResultCache(budget_bytes=100)
        cache.put_arena("env", _FakeArena(nbytes=10_000))
        assert cache.get_arena("env") is not None


class TestArenas:
    def test_state_dependent_arena_refused(self):
        cache = ResultCache()
        with pytest.raises(ValueError, match="state-dependent"):
            cache.put_arena("env", _FakeArena(nbytes=10, state_key="abc123"))

    def test_arena_hit_miss_accounting(self):
        cache = ResultCache()
        assert cache.get_arena("env") is None
        cache.put_arena("env", _FakeArena(nbytes=10))
        assert cache.get_arena("env") is not None
        stats = cache.stats()
        assert (stats.arena_hits, stats.arena_misses) == (1, 1)


class TestTelemetryAndConcurrency:
    def test_counters_land_in_the_live_registry(self):
        registry, _ = telemetry.enable()
        try:
            cache = ResultCache()
            cache.get_cell("s", "none", 0.0)
            cache.put_cell("s", "none", 0.0, make_cell("none", 0.0))
            cache.get_cell("s", "none", 0.0)
            counters = registry.snapshot()["counters"]
            assert counters["service.cache.cell_misses"] == 1
            assert counters["service.cache.cell_hits"] == 1
        finally:
            set_registry(None)

    def test_concurrent_mixed_access_stays_consistent(self):
        cache = ResultCache(budget_bytes=64 * _CELL_BYTES)
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(200):
                    theta = (i % 10) / 10
                    view = cache.cell_view(f"scope-{worker % 2}")
                    got = view.get("none", theta)
                    if got is None:
                        view.put("none", theta, make_cell("none", theta))
                    else:
                        assert got.theta == theta
            except BaseException as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        stats = cache.stats()
        assert stats.cell_hits + stats.cell_misses == 4 * 200
        assert stats.bytes_used <= cache.budget_bytes
