"""Stress-testing the model's assumptions (Section 8).

Runs the same case study under the paper's discussed extensions and
prints how each moves the outcome:

- routing policy: Gao-Rexford (baseline), SP-first (§8.3), and sticky
  primaries (multihomed ASes never exercise alternatives);
- threshold heterogeneity (§8.2): lognormal noise, degree-scaled;
- pricing (§8.4): tiered flat rates and concave volume discounts;
- topology evolution (§8.4): growth with secure-provider attraction.

Usage::

    python examples/model_sensitivity.py [num_ases]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import build_environment
from repro.core import (
    Pricing,
    PricingModel,
    SimulationConfig,
    cps_plus_top_isps,
    lognormal_thresholds,
    degree_scaled_thresholds,
    run_deployment,
)
from repro.experiments.report import format_table
from repro.routing import RoutingCache, restrict_to_primary
from repro.topology import EvolutionConfig, EvolvingDeployment

THETA = 0.05


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    env = build_environment(n=n, seed=2011, x=0.10)
    graph = env.graph
    adopters = cps_plus_top_isps(graph, 5)
    cfg = SimulationConfig(theta=THETA)
    rows = []

    def record(name, result):
        rows.append([name, f"{float(result.final_node_secure.mean()):.3f}",
                     result.num_rounds])

    record("baseline (Gao-Rexford, linear, uniform theta)",
           run_deployment(graph, adopters, cfg, env.cache))

    sp_cache = RoutingCache(graph, policy="sp-first")
    record("SP-first routing (sec 8.3)",
           run_deployment(graph, adopters, cfg, sp_cache))

    sticky = np.ones(graph.n, dtype=bool)
    sticky_cache = RoutingCache(
        graph, transform=lambda dr: restrict_to_primary(dr, sticky)
    )
    record("sticky primaries (sec 8.3)",
           run_deployment(graph, adopters, cfg, sticky_cache))

    record("lognormal theta, sigma=0.5 (sec 8.2)",
           run_deployment(graph, adopters, cfg, env.cache,
                          thresholds=lognormal_thresholds(graph, THETA, 0.5, seed=1)))
    record("degree-scaled theta (sec 8.2)",
           run_deployment(graph, adopters, cfg, env.cache,
                          thresholds=degree_scaled_thresholds(graph, THETA, 0.5)))

    record("tiered pricing, tier=200 (sec 8.4)",
           run_deployment(graph, adopters, cfg, env.cache,
                          pricing=Pricing(model=PricingModel.TIERED, tier=200.0)))
    record("concave pricing, alpha=0.7 (sec 8.4)",
           run_deployment(graph, adopters, cfg, env.cache,
                          pricing=Pricing(model=PricingModel.CONCAVE, alpha=0.7)))

    print(format_table(
        ["variant", "frac ASes secure", "rounds"],
        rows, title=f"Model sensitivity at theta={THETA:.0%} "
                    f"(same graph, same early adopters)",
    ))

    print()
    print("evolving topology (sec 8.4): three grow-and-deploy epochs")
    driver = EvolvingDeployment(
        graph.copy(), adopters,
        EvolutionConfig(new_stubs=max(5, n // 40), secure_attraction=0.8),
        SimulationConfig(theta=THETA, max_rounds=30),
    )
    for record_ in driver.run(3):
        print(f"  epoch {record_.epoch}: {record_.num_ases} ASes, "
              f"{record_.fraction_secure:.1%} secure")


if __name__ == "__main__":
    main()
