"""Kernel ablation: incremental vs full projected-utility engines.

DESIGN.md calls this out: both produce identical values (tests assert
it); the incremental engine prunes non-reactive destinations and
propagates deltas, which is what makes whole-graph sweeps tractable.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProjectionEngine, UtilityModel
from repro.core.engine import compute_round_data
from repro.core.projection import project_flip
from repro.core.state import DeploymentState, StateDeriver


@pytest.fixture(scope="module")
def game_state(env):
    deriver = StateDeriver(env.graph, compiled=env.cache.compiled)
    adopters = frozenset(env.graph.index(a) for a in env.case_study_adopters())
    state = DeploymentState.initial(adopters)
    rd = compute_round_data(env.cache, deriver, state, UtilityModel.OUTGOING)
    isp = next(i for i in env.graph.isp_indices if i not in adopters)
    return deriver, rd, isp


def test_kernel_projection_incremental(benchmark, env, game_state):
    deriver, rd, isp = game_state
    proj = benchmark(
        lambda: project_flip(
            env.cache, deriver, rd, isp, True, UtilityModel.OUTGOING,
            ProjectionEngine.INCREMENTAL,
        )
    )
    assert proj.utility >= 0


def test_kernel_projection_full(benchmark, env, game_state):
    deriver, rd, isp = game_state
    proj = benchmark(
        lambda: project_flip(
            env.cache, deriver, rd, isp, True, UtilityModel.OUTGOING,
            ProjectionEngine.FULL,
        )
    )
    assert proj.utility >= 0


def test_kernel_engines_identical(env, game_state):
    deriver, rd, isp = game_state
    inc = project_flip(env.cache, deriver, rd, isp, True,
                       UtilityModel.OUTGOING, ProjectionEngine.INCREMENTAL)
    full = project_flip(env.cache, deriver, rd, isp, True,
                        UtilityModel.OUTGOING, ProjectionEngine.FULL)
    assert inc.utility == pytest.approx(full.utility)
