"""CLI behaviour: JSON schema, text format, exit codes, rule catalogue."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main, render_json, render_text
from repro.analysis.engine import lint_paths
from repro.analysis.findings import JSON_FORMAT, PARSE_ERROR

VIOLATION = 'fh = open("out.txt", "w")\n'
CLEAN = "VALUE = 1\n"


@pytest.fixture
def violation_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATION, encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(CLEAN, encoding="utf-8")
    return path


class TestJsonSchema:
    def test_schema_shape(self, violation_file):
        payload = json.loads(render_json(lint_paths([violation_file])))
        assert payload["format"] == JSON_FORMAT
        assert payload["files_checked"] == 1
        assert isinstance(payload["findings"], list) and payload["findings"]
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "col", "code", "rule", "message"}
        assert finding["code"] == "RPR001"
        assert isinstance(finding["line"], int) and finding["line"] == 1
        assert payload["counts"] == {"RPR001": 1}

    def test_clean_run_schema(self, clean_file):
        payload = json.loads(render_json(lint_paths([clean_file])))
        assert payload["findings"] == [] and payload["counts"] == {}

    def test_findings_sorted_deterministically(self, tmp_path):
        (tmp_path / "b.py").write_text(VIOLATION, encoding="utf-8")
        (tmp_path / "a.py").write_text(VIOLATION, encoding="utf-8")
        payload = json.loads(render_json(lint_paths([tmp_path])))
        paths = [f["path"] for f in payload["findings"]]
        assert paths == sorted(paths)


class TestTextOutput:
    def test_finding_line_format(self, violation_file):
        text = render_text(lint_paths([violation_file]))
        assert f"{violation_file}:1:6: RPR001" in text
        assert "1 finding(s)" in text

    def test_clean_summary(self, clean_file):
        assert "clean: 0 findings (1 files checked)" in render_text(lint_paths([clean_file]))


class TestExitCodes:
    def test_clean_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        capsys.readouterr()

    def test_findings_exit_one(self, violation_file, capsys):
        assert main([str(violation_file)]) == 1
        capsys.readouterr()

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == 2
        capsys.readouterr()

    def test_unknown_code_usage_error(self, clean_file):
        with pytest.raises(SystemExit) as err:
            main(["--select", "RPR999", str(clean_file)])
        assert err.value.code == 2

    def test_no_paths_usage_error(self):
        with pytest.raises(SystemExit) as err:
            main([])
        assert err.value.code == 2


class TestParseErrors:
    def test_unparseable_file_is_a_finding(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert PARSE_ERROR in out


class TestCatalogueAndEntryPoint:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in [f"RPR00{i}" for i in range(1, 10)]:
            assert code in out

    def test_python_dash_m_entry_point(self, clean_file):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(clean_file)],
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
