"""Deployment state (Section 3.2).

A state ``S`` is the set of ASes that have *deliberately* deployed
S*BGP: the early adopters (ISPs, CPs, or stubs), plus every ISP that
chose to deploy in some round.  Stub security is *derived*: a stub runs
simplex S*BGP exactly when it is an early adopter or at least one of
its providers is a secure ISP ("once an ISP becomes secure, it deploys
simplex S*BGP at all its stub customers", §2.3) — and loses it again if
every such provider turns S*BGP off.

CPs deploy only if they are early adopters (they have no transit
revenue to compete for); ISPs are the only ASes that make round-by-
round decisions.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.routing.compiled import CompiledGraph, gather_neighbors
from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class DeploymentState:
    """Immutable deployment state over dense node indices.

    ``deployers`` holds the deliberate S*BGP deployers.  Use
    :func:`derive_security` (or :class:`StateDeriver`) for the full
    per-node security flags including simplex stubs.
    """

    deployers: frozenset[int]
    early_adopters: frozenset[int]

    def with_flips(self, turn_on: Iterable[int] = (), turn_off: Iterable[int] = ()) -> "DeploymentState":
        """New state with the given deployers added / removed."""
        new = set(self.deployers)
        new.update(turn_on)
        new.difference_update(turn_off)
        new.update(self.early_adopters)  # early adopters are pinned
        return DeploymentState(frozenset(new), self.early_adopters)

    def is_deployer(self, node: int) -> bool:
        """True if ``node`` deliberately runs S*BGP in this state."""
        return node in self.deployers

    @classmethod
    def initial(cls, early_adopters: Iterable[int]) -> "DeploymentState":
        """The paper's initial state: exactly the early adopters deploy."""
        ea = frozenset(early_adopters)
        return cls(deployers=ea, early_adopters=ea)


class StateDeriver:
    """Derives per-node security and tie-breaking flags from a state.

    Bound to one graph; reusable across states and rounds.

    Parameters
    ----------
    graph:
        The AS topology.
    stub_breaks_ties:
        Whether stubs running simplex S*BGP apply the SecP tie-break
        (§6.7 evaluates both settings and finds the results insensitive).
    compiled:
        Optional pre-built :class:`CompiledGraph` to share with a cache.
    """

    def __init__(
        self,
        graph: ASGraph,
        stub_breaks_ties: bool = True,
        compiled: CompiledGraph | None = None,
    ):
        self.graph = graph
        self.compiled = compiled or CompiledGraph.from_graph(graph)
        roles = graph.roles
        self.is_stub = roles == int(ASRole.STUB)
        self.is_isp = roles == int(ASRole.ISP)
        self.is_cp = roles == int(ASRole.CP)
        self.stub_indices = np.flatnonzero(self.is_stub)
        #: static policy: which nodes would apply SecP *if* secure
        self.break_policy = ~self.is_stub | bool(stub_breaks_ties)

    def node_secure(self, state: DeploymentState) -> np.ndarray:
        """bool[n]: deliberate deployers plus derived simplex stubs."""
        n = self.graph.n
        secure = np.zeros(n, dtype=bool)
        if state.deployers:
            secure[list(state.deployers)] = True
        # a stub is secure iff it deployed itself (early adopter) or has
        # a provider that deploys
        prov_indptr, prov_idx = self.compiled.prov_indptr, self.compiled.prov_idx
        stubs = self.stub_indices
        if len(stubs):
            provs = gather_neighbors(prov_indptr, prov_idx, stubs)
            counts = (prov_indptr[stubs + 1] - prov_indptr[stubs]).astype(np.int64)
            rows = np.repeat(np.arange(len(stubs), dtype=np.int64), counts)
            has_secure_prov = np.zeros(len(stubs), dtype=bool)
            np.logical_or.at(has_secure_prov, rows, secure[provs])
            secure[stubs] |= has_secure_prov
        return secure

    def breaks_ties(self, node_secure: np.ndarray) -> np.ndarray:
        """bool[n]: nodes that actually apply the SecP criterion."""
        return node_secure & self.break_policy

    def stubs_of(self, isp: int) -> np.ndarray:
        """Dense indices of ``isp``'s stub customers."""
        cust = self.compiled
        members = gather_neighbors(cust.cust_indptr, cust.cust_idx, np.array([isp]))
        return members[self.is_stub[members]]

    def newly_secured_stubs(self, state: DeploymentState, isp: int) -> list[int]:
        """Stubs that would *become* secure if ``isp`` deployed."""
        secure = self.node_secure(state)
        return [int(s) for s in self.stubs_of(isp) if not secure[s]]

    def orphaned_stubs(self, state: DeploymentState, isp: int) -> list[int]:
        """Stubs that would *lose* security if ``isp`` turned S*BGP off."""
        if isp not in state.deployers:
            return []
        after = state.with_flips(turn_off=[isp])
        secure_after = self.node_secure(after)
        return [int(s) for s in self.stubs_of(isp) if not secure_after[s]]
