"""§4's no-subsampling rationale, measured.

The paper: "we chose not to 'sample down' the complexity of our
simulations ... this would reduce the number of available secure paths
and artificially prevent S*BGP deployment from progressing."  The bench
quantifies exactly that artifact for destination sampling: the sampled
estimator runs ~linearly faster but *under*-reports adoption, because
competition over unsampled destinations is invisible to deciders.
"""

from __future__ import annotations

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.experiments.report import format_table
from repro.experiments.setup import build_environment

from benchmarks.conftest import BENCH_N, BENCH_SEED

FRACTIONS = (1.0, 0.5, 0.25)


def test_destination_sampling_artifact(benchmark, capsys):
    def run_all():
        rows = []
        for frac in FRACTIONS:
            sample = None if frac >= 1.0 else int(BENCH_N * frac)
            env = build_environment(
                n=BENCH_N, seed=BENCH_SEED, x=0.10, sample_destinations=sample
            )
            result = run_deployment(
                env.graph, cps_plus_top_isps(env.graph, 5),
                SimulationConfig(theta=0.05), env.cache,
            )
            rows.append((frac, float(result.final_node_secure.mean()),
                         result.num_rounds))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["destinations sampled", "frac ASes secure", "rounds"],
            [[f"{f:.0%}", f"{s:.3f}", r] for f, s, r in rows],
            title="Sec 4: sampling down artificially suppresses deployment",
        ))
        print("  the paper refused to subsample for exactly this reason")

    by = {f: s for f, s, _ in rows}
    # the artifact's direction: sampled runs adopt at most as much
    assert by[0.25] <= by[1.0] + 0.02
    assert by[0.5] <= by[1.0] + 0.02
