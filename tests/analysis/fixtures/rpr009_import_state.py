"""Golden fixture for RPR009 (import-time global state mutation)."""

import logging
import os
import sys
import warnings

sys.path.insert(0, "src")  # expect: RPR009
os.environ["REPRO_DEBUG"] = "1"  # expect: RPR009
warnings.filterwarnings("ignore")  # expect: RPR009
logging.basicConfig(level=logging.INFO)  # expect: RPR009
os.chdir("/tmp")  # repro-lint: disable=RPR009 -- fixture waiver

LOG = logging.getLogger(__name__)


def clean_mutation_at_call_time() -> None:
    os.environ["REPRO_DEBUG"] = "0"
    warnings.filterwarnings("default")
