"""S-BGP path validation: signing and verifying route attestations.

S-BGP (Section 2.1) lets an AS receiving an announcement
``a1 a2 ... ak`` validate that *every* AS on the path actually sent it.
Each AS signs the (prefix, path-so-far, intended receiver) triple; the
chain is valid only if every hop's signature checks out, which is why a
path is only *secure* when every AS on it deployed S*BGP (§2.2.2).

Simplex S-BGP (§2.2.1) signs only a stub's own-prefix originations and
never validates — the stub-side cost reduction the deployment strategy
depends on.
"""

from __future__ import annotations

from repro.protocol.messages import Announcement, RouteAttestation
from repro.protocol.rpki import RPKI, Prefix


def sign_hop(
    rpki: RPKI, signer: int, prefix: Prefix, path: tuple[int, ...], next_as: int
) -> RouteAttestation:
    """Create ``signer``'s attestation for forwarding ``path`` to ``next_as``.

    ``path`` must start with ``signer`` (the path as the receiver will
    see it from this hop).
    """
    if not path or path[0] != signer:
        raise ValueError(f"path {path} does not start with signer AS {signer}")
    payload = RouteAttestation.payload(prefix, path, next_as)
    return RouteAttestation(
        signer=signer, path=path, next_as=next_as, signature=rpki.sign(signer, payload)
    )


def originate(rpki: RPKI, origin: int, prefix: Prefix, next_as: int) -> Announcement:
    """Origin announcement of ``prefix`` by ``origin`` toward ``next_as``."""
    att = sign_hop(rpki, origin, prefix, (origin,), next_as)
    return Announcement(prefix=prefix, path=(origin,), attestations=(att,))


def forward(
    rpki: RPKI,
    asn: int,
    announcement: Announcement,
    next_as: int,
    sign: bool = True,
) -> Announcement:
    """Propagate ``announcement`` one hop through ``asn`` toward ``next_as``.

    ``sign=False`` models an AS that has not deployed S*BGP (or a
    simplex stub forwarding a foreign prefix): the path grows but no
    attestation is added, breaking the chain.
    """
    new_path = (asn,) + announcement.path
    attestation = None
    if sign:
        payload = RouteAttestation.payload(announcement.prefix, new_path, next_as)
        attestation = RouteAttestation(
            signer=asn,
            path=new_path,
            next_as=next_as,
            signature=rpki.sign(asn, payload),
        )
    return announcement.extended(asn, attestation)


def validated_signers(rpki: RPKI, announcement: Announcement, receiver: int) -> set[int]:
    """ASes on the path whose attestation verifies for ``receiver``.

    For position ``j`` on ``path`` the expected attestation covers the
    suffix ``path[j:]`` addressed to ``path[j-1]`` (or ``receiver`` for
    the first hop).
    """
    path = announcement.path
    by_signer = {a.signer: a for a in announcement.attestations}
    valid: set[int] = set()
    for j, asn in enumerate(path):
        att = by_signer.get(asn)
        if att is None:
            continue
        expected_next = receiver if j == 0 else path[j - 1]
        if att.path != path[j:] or att.next_as != expected_next:
            continue
        payload = RouteAttestation.payload(announcement.prefix, path[j:], expected_next)
        if rpki.verify(asn, payload, att.signature):
            valid.add(asn)
    return valid


def validate_path(rpki: RPKI, announcement: Announcement, receiver: int) -> bool:
    """Full S-BGP validation: every AS on the path signed correctly."""
    return validated_signers(rpki, announcement, receiver) == set(announcement.path)
