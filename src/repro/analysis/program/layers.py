"""Import-graph layering contract (RPR015) and DOT rendering.

The architecture is declared once, in ``pyproject.toml``::

    [tool.repro.layers]
    "1" = ["repro.runtime", "repro.telemetry"]
    "2" = ["repro.topology"]
    ...

Layer *k* may import layers 1..k (same or lower).  The contract applies
to **eager** imports only: function-scope (lazy) and ``TYPE_CHECKING``
imports are the project's sanctioned cycle-breaking idiom and are
exempt — they are still resolved, drawn dashed/dotted in the DOT
export, and counted in the summary, so an erosion of the eager DAG into
"everything is lazy" stays visible.

Two findings:

* **upward import** — an eager import from a module in layer *i* into a
  package in layer *j > i*;
* **import cycle** — a strongly-connected component of ≥ 2 modules in
  the eager module graph (today's graph is a DAG; every new cycle is a
  latent import-order bug even when Python's partial-module tolerance
  happens to mask it).

Modules whose package has no manifest entry are findings too: the
manifest must stay total as the codebase grows.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.program.index import EAGER, LAZY, TYPING, ImportEdge, ProgramIndex

_SECTION = "[tool.repro.layers]"


@dataclasses.dataclass(frozen=True)
class LayerManifest:
    """Ordered layers of package prefixes (layer 1 is the foundation)."""

    layers: tuple[tuple[str, ...], ...]
    source: str  # where the manifest was found (diagnostics)

    def layer_of(self, module: str) -> int | None:
        """1-based layer of ``module`` via longest-prefix match, else None."""
        best: tuple[int, int] | None = None  # (prefix length, layer index)
        for idx, packages in enumerate(self.layers, start=1):
            for prefix in packages:
                if module == prefix or module.startswith(prefix + "."):
                    if best is None or len(prefix) > best[0]:
                        best = (len(prefix), idx)
        return best[1] if best else None

    def package_of(self, module: str) -> str | None:
        """The manifest prefix ``module`` falls under, if any."""
        best: str | None = None
        for packages in self.layers:
            for prefix in packages:
                if module == prefix or module.startswith(prefix + "."):
                    if best is None or len(prefix) > len(best):
                        best = prefix
        return best


def _parse_layers_fallback(text: str) -> list[tuple[str, ...]] | None:
    """Minimal ``[tool.repro.layers]`` reader for pythons without tomllib.

    Handles exactly the shape this project commits: quoted numeric keys
    mapping to (possibly multi-line) string arrays.
    """
    start = text.find(_SECTION)
    if start < 0:
        return None
    body = text[start + len(_SECTION):]
    stop = re.search(r"^\[", body, flags=re.MULTILINE)
    if stop:
        body = body[: stop.start()]
    entries: dict[int, tuple[str, ...]] = {}
    for match in re.finditer(r'^"?(\d+)"?\s*=\s*(\[.*?\])', body, flags=re.MULTILINE | re.DOTALL):
        try:
            value = ast.literal_eval(match.group(2))
        except (ValueError, SyntaxError):
            return None
        entries[int(match.group(1))] = tuple(str(v) for v in value)
    if not entries:
        return None
    return [entries[k] for k in sorted(entries)]


def load_manifest(pyproject: Path) -> LayerManifest | None:
    """Read ``[tool.repro.layers]`` from one pyproject.toml, if present."""
    text = pyproject.read_text(encoding="utf-8")
    if _SECTION not in text:
        return None
    layers: list[tuple[str, ...]] | None
    try:
        import tomllib

        table = tomllib.loads(text).get("tool", {}).get("repro", {}).get("layers", {})
        layers = [tuple(table[k]) for k in sorted(table, key=int)] or None
    except ModuleNotFoundError:  # py3.10: narrow hand-rolled fallback
        layers = _parse_layers_fallback(text)
    if not layers:
        return None
    return LayerManifest(layers=tuple(layers), source=str(pyproject))


def find_manifest(paths: Iterable[str | Path]) -> LayerManifest | None:
    """Walk up from the linted paths to the nearest manifest-bearing pyproject."""
    for raw in paths:
        probe = Path(raw).resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate in (probe, *probe.parents):
            pyproject = candidate / "pyproject.toml"
            if pyproject.is_file():
                manifest = load_manifest(pyproject)
                if manifest is not None:
                    return manifest
    return None


# -- cycle detection ---------------------------------------------------


def strongly_connected(edges: Mapping[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs (iterative) over an adjacency mapping; size ≥ 2 only."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in edges and succ not in index:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
    return sccs


# -- the check ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LayeringViolation:
    """One RPR015 site (anchored at the offending import statement)."""

    path: str
    line: int
    col: int
    message: str


def check_layers(index: ProgramIndex, manifest: LayerManifest) -> list[LayeringViolation]:
    out: list[LayeringViolation] = []

    # 1. manifest totality: every linted project module must map to a layer
    for module, fi in sorted(index.modules.items()):
        if manifest.layer_of(module) is None:
            out.append(
                LayeringViolation(
                    path=fi.path,
                    line=1,
                    col=1,
                    message=(
                        f"module {module} belongs to no declared layer; add its "
                        f"package to [tool.repro.layers] in {manifest.source}"
                    ),
                )
            )

    # 2. upward eager imports
    for edge in index.eager_edges():
        src_layer = manifest.layer_of(edge.src)
        dst_layer = manifest.layer_of(edge.dst)
        if src_layer is None or dst_layer is None:
            continue  # reported by the totality check above
        if dst_layer > src_layer:
            out.append(
                LayeringViolation(
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"upward import: {edge.src} (layer {src_layer}, "
                        f"{manifest.package_of(edge.src)}) eagerly imports {edge.dst} "
                        f"(layer {dst_layer}, {manifest.package_of(edge.dst)}); make it "
                        "lazy/TYPE_CHECKING or move the shared code down"
                    ),
                )
            )

    # 3. eager module cycles
    adjacency: dict[str, set[str]] = {m: set() for m in index.modules}
    for edge in index.eager_edges():
        adjacency.setdefault(edge.src, set()).add(edge.dst)
    for component in strongly_connected(adjacency):
        members = set(component)
        cycle_text = " -> ".join(component + [component[0]])
        for edge in index.eager_edges():
            if edge.src in members and edge.dst in members:
                out.append(
                    LayeringViolation(
                        path=edge.path,
                        line=edge.line,
                        col=edge.col,
                        message=(
                            f"eager import cycle [{cycle_text}]; break the cycle with a "
                            "lazy/TYPE_CHECKING import or an extracted shared module"
                        ),
                    )
                )
    return out


# -- DOT rendering -----------------------------------------------------

_KIND_STYLE = {EAGER: "solid", LAZY: "dashed", TYPING: "dotted"}


def render_dot(index: ProgramIndex, manifest: LayerManifest | None) -> str:
    """Package-level import graph, clustered by layer, edge style by kind.

    Edges aggregate the module-level edges between two packages; the
    label carries the count.  Lazy and typing edges are drawn dashed and
    dotted so the eager skeleton — the thing the layering contract
    constrains — stands out.
    """

    def package(module: str) -> str:
        if manifest is not None:
            pkg = manifest.package_of(module)
            if pkg is not None:
                return pkg
        parts = module.split(".")
        return ".".join(parts[:2]) if len(parts) > 1 else module

    agg: dict[tuple[str, str, str], int] = {}
    packages: set[str] = set()
    for module in index.modules:
        packages.add(package(module))
    for edge in index.edges:
        src, dst = package(edge.src), package(edge.dst)
        if src == dst:
            continue
        agg[(src, dst, edge.kind)] = agg.get((src, dst, edge.kind), 0) + 1

    lines = [
        "digraph repro_imports {",
        "  rankdir=BT;",
        '  node [shape=box, style="rounded,filled", fillcolor="#eef3f8", fontname="Helvetica"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]
    if manifest is not None:
        for idx, layer in enumerate(manifest.layers, start=1):
            present = [p for p in layer if p in packages]
            if not present:
                continue
            lines.append(f"  subgraph cluster_layer{idx} {{")
            lines.append(f'    label="layer {idx}"; color="#b8c4d0"; fontname="Helvetica";')
            for pkg in present:
                lines.append(f'    "{pkg}";')
            lines.append("  }")
    else:
        for pkg in sorted(packages):
            lines.append(f'  "{pkg}";')
    for (src, dst, kind), count in sorted(agg.items()):
        style = _KIND_STYLE[kind]
        label = f' label="{count}"' if count > 1 else ""
        extra = ' color="#8899aa"' if kind != EAGER else ""
        lines.append(f'  "{src}" -> "{dst}" [style={style}{extra}{label}];')
    lines.append("}")
    return "\n".join(lines) + "\n"
