"""Rule framework: file context, import resolution, single-pass walker.

Rules are visitors: a :class:`Rule` subclass declares a ``code``, a
``name`` and a ``rationale``, and implements any of the ``visit_*``
hooks (``visit_call``, ``visit_attribute``, ``visit_name``,
``visit_classdef``, ``visit_excepthandler``, ``visit_assign``).  The
:class:`Walker` makes ONE pass over the AST and dispatches each node to
every subscribed rule, so adding rules does not add tree walks.

The walker also maintains the shared analysis state rules need:

* an import-alias map, so ``np.random.rand`` resolves to
  ``numpy.random.rand`` whatever the module was imported as;
* the enclosing-function depth, so rules can distinguish import-time
  execution (module and class bodies) from call-time execution.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable

from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionTable


class FileContext:
    """Everything rules may consult about the file being linted."""

    def __init__(self, path: str | Path, source: str, module: str | None) -> None:
        self.path = str(path)
        #: Dotted module path (``repro.routing.cache``) when the file
        #: lives under a ``repro`` package directory, else None.  Rules
        #: use it for package-scoped exemptions; None gets the strict
        #: (no-exemption) treatment.
        self.module = module
        self.source = source
        self.suppressions = SuppressionTable.from_source(source)
        self.findings: list[Finding] = []
        #: Maintained by the walker: local name -> imported dotted path.
        self.aliases: dict[str, str] = {}
        #: Maintained by the walker: how many FunctionDef/Lambda bodies
        #: enclose the node currently being visited.  0 == import time.
        self.function_depth = 0

    # -- queries -------------------------------------------------------

    def in_package(self, package: str) -> bool:
        """True when this file is ``package`` or lives under it."""
        return self.module is not None and (
            self.module == package or self.module.startswith(package + ".")
        )

    def is_module(self, module: str) -> bool:
        return self.module == module

    def at_import_time(self) -> bool:
        """True while visiting code that runs when the module is imported."""
        return self.function_depth == 0

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a Name/Attribute chain, through import aliases.

        ``np.random.rand`` -> ``numpy.random.rand`` when ``np`` was
        bound by ``import numpy as np``.  Unimported bare names resolve
        to themselves; anything rooted in a non-Name expression
        (``self.x.y``, ``f().z``) resolves to None.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    # -- reporting -----------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str | None = None) -> None:
        """Record a finding at ``node`` unless suppressed on its line."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if self.suppressions.is_suppressed(line, rule.code):
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                code=rule.code,
                message=message if message is not None else rule.message,
                rule=rule.name,
            )
        )


class Rule:
    """Base class for one lint rule (one invariant, one code)."""

    code: str = "RPR999"
    name: str = "abstract-rule"
    #: One-line finding text (rules may override per-site via report()).
    message: str = ""
    #: Why the invariant exists — surfaced by ``--list-rules`` and DESIGN.md.
    rationale: str = ""

    # Hook signatures (all optional on subclasses):
    #   visit_call(ctx, node: ast.Call)
    #   visit_attribute(ctx, node: ast.Attribute)
    #   visit_name(ctx, node: ast.Name)
    #   visit_classdef(ctx, node: ast.ClassDef)
    #   visit_excepthandler(ctx, node: ast.ExceptHandler)
    #   visit_assign(ctx, node: ast.Assign)
    #   visit_import(ctx, node: ast.Import)
    #   visit_importfrom(ctx, node: ast.ImportFrom)


_HOOKS: dict[type, str] = {
    ast.Call: "visit_call",
    ast.Attribute: "visit_attribute",
    ast.Name: "visit_name",
    ast.ClassDef: "visit_classdef",
    ast.ExceptHandler: "visit_excepthandler",
    ast.Assign: "visit_assign",
    ast.Import: "visit_import",
    ast.ImportFrom: "visit_importfrom",
}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class Walker(ast.NodeVisitor):
    """Single tree pass dispatching nodes to every subscribed rule."""

    def __init__(self, ctx: FileContext, rules: list[Rule]) -> None:
        self.ctx = ctx
        self._dispatch: dict[type, list[Callable[[FileContext, ast.AST], None]]] = {}
        for rule in rules:
            for node_type, hook in _HOOKS.items():
                method = getattr(rule, hook, None)
                if method is not None:
                    self._dispatch.setdefault(node_type, []).append(method)

    def run(self, tree: ast.AST) -> None:
        self.visit(tree)

    # Import tracking happens before dispatch so a rule visiting the
    # Import node itself still sees the alias registered.

    def _register_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else alias.name.partition(".")[0]
            self.ctx.aliases[local] = target

    def _register_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # best-effort relative-import anchoring
            if self.ctx.module:
                anchor = self.ctx.module.rsplit(".", node.level)[0]
                module = f"{anchor}.{module}" if module else anchor
            elif not module:
                return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.ctx.aliases[local] = f"{module}.{alias.name}" if module else alias.name

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            self._register_import(node)
        elif isinstance(node, ast.ImportFrom):
            self._register_import_from(node)

        for method in self._dispatch.get(type(node), ()):
            method(self.ctx, node)

        if isinstance(node, _FUNCTION_NODES):
            self.ctx.function_depth += 1
            try:
                self.generic_visit(node)
            finally:
                self.ctx.function_depth -= 1
        else:
            self.generic_visit(node)
