"""The attack × policy × deployment-strategy matrix.

§2.2.1 evaluates one attack (the origin hijack) against one deployment
path (the market's).  This runner spans the full grid: every registered
:class:`~repro.security.scenarios.AttackScenario`, every registered
routing policy, and every registered
:class:`~repro.security.scenarios.DeploymentStrategy` evaluated at a
ladder of deployment levels — the Lychev et al. "Is the Juice Worth
the Squeeze?" question asked of every cell at once.

One seeded (victim, attacker) pair sample is drawn up front and shared
by *every* cell, so per-cell differences are pure scenario / policy /
deployment effects, never sampling noise.  Cells run on the batched
multi-origin kernel (:func:`repro.security.hijack.simulate_attacks_batched`).

Like sweeps, matrix runs checkpoint: pass ``journal`` and every
finished cell is durably appended; a rerun with the same journal
replays completed cells.  Resuming a journal recorded over a different
scenario set raises :class:`~repro.runtime.errors.SchemaError` before
the generic header check, so the error names the two sets.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.state import StateDeriver
from repro.experiments.setup import ExperimentEnv
from repro.routing.policy import available_policies, get_policy
from repro.routing.reference import ConvergenceError
from repro.runtime.errors import SchemaError
from repro.runtime.guard import current_guard
from repro.runtime.journal import RunJournal, coerce_journal
from repro.security.metrics import impact_from_outcomes, sample_pairs
from repro.security.hijack import simulate_attacks_batched
from repro.security.scenarios import (
    available_scenarios,
    available_strategies,
    get_scenario,
    get_strategy,
)
from repro.telemetry.metrics import get_registry
from repro.telemetry.spans import get_tracer

#: journal ``kind`` for attack-matrix checkpoints
MATRIX_JOURNAL_KIND = "attack-matrix"

#: default deployment-level ladder (0 = nobody, 1 = the strategy's end)
DEFAULT_LEVELS: tuple[float, ...] = (0.0, 0.5, 1.0)

#: progress callback: ``(cell, source)`` with source ``"computed"`` or
#: ``"replayed"``; raising aborts at a cell boundary (everything
#: finished is already journaled), mirroring sweep cancellation.
MatrixCallback = Callable[["AttackMatrixCell", str], None]


@dataclasses.dataclass(frozen=True)
class AttackMatrixCell:
    """Outcome of one (scenario, policy, strategy, level) evaluation."""

    scenario: str
    policy: str
    strategy: str
    level: float
    samples: int
    fraction_secure: float        # of the deployment state actually used
    mean_fraction_fooled: float
    max_fraction_fooled: float
    outcome: str                  # "ok" | "no-convergence"

    @property
    def key(self) -> tuple[str, str, str, float]:
        return (self.scenario, self.policy, self.strategy, self.level)


def cell_to_dict(cell: AttackMatrixCell) -> dict:
    """JSON-serialisable form of a cell (for the matrix journal)."""
    return dataclasses.asdict(cell)


def cell_from_dict(payload: dict) -> AttackMatrixCell:
    """Inverse of :func:`cell_to_dict`."""
    fields = {f.name for f in dataclasses.fields(AttackMatrixCell)}
    return AttackMatrixCell(**{k: v for k, v in payload.items() if k in fields})


def _matrix_meta(
    env: ExperimentEnv,
    scenarios: Sequence[str],
    policies: Sequence[str],
    strategies: Sequence[str],
    levels: Sequence[float],
    samples: int,
    seed: int,
) -> dict:
    """Header metadata identifying one matrix grid.

    Resuming a journal whose metadata differs raises
    :class:`~repro.runtime.errors.JournalMismatchError`; the scenario
    set additionally gets its own earlier, named check
    (:func:`_check_journal_scenarios`).
    """
    return {
        "num_ases": env.graph.n,
        "env_policy": env.cache.policy_name,
        "scenarios": sorted(scenarios),
        "policies": sorted(policies),
        "strategies": sorted(strategies),
        "levels": [float(f) for f in levels],
        "samples": int(samples),
        "seed": int(seed),
    }


def _check_journal_scenarios(journal: RunJournal, scenarios: Sequence[str]) -> None:
    """Refuse to resume a matrix journal recorded over other scenarios.

    Cells from different threat models are not comparable; replaying
    them into one grid would silently corrupt the matrix.  Raised
    *before* the generic header check so the error names the two
    scenario sets instead of a bag of mismatched metadata keys.
    """
    if not journal.exists():
        return
    header = journal.header()
    if header is None or header.get("kind") != MATRIX_JOURNAL_KIND:
        return  # kind mismatch is ensure_header's to report
    recorded = (header.get("meta") or {}).get("scenarios", [])
    if sorted(recorded) != sorted(scenarios):
        raise SchemaError(
            f"{journal.path}: attack-matrix journal was recorded over "
            f"scenarios {sorted(recorded)} but this run spans "
            f"{sorted(scenarios)}; resuming would mix cells from "
            "different threat models — use a fresh journal path (or "
            "rerun with the recorded scenario set)"
        )


def run_attack_matrix(
    env: ExperimentEnv,
    scenarios: Sequence[str] | None = None,
    policies: Sequence[str] | None = None,
    strategies: Sequence[str] | None = None,
    levels: Sequence[float] = DEFAULT_LEVELS,
    samples: int = 12,
    seed: int = 0,
    stub_breaks_ties: bool = True,
    journal: RunJournal | str | Path | None = None,
    on_cell: MatrixCallback | None = None,
    backend: str | None = None,
) -> list[AttackMatrixCell]:
    """Evaluate the full scenario × policy × strategy × level grid.

    Deployment trajectories come from the named strategies (the
    ``market_rounds`` replay runs under the environment's cache
    policy); attack outcomes are then evaluated under *each* routing
    policy in ``policies``, so the matrix separates "who deployed" from
    "how routes are ranked".  A policy that fails to converge under a
    scenario yields an ``outcome="no-convergence"`` cell, never an
    exception — matching the §8.3 ablation's treatment of
    ``security_1st``.
    """
    # canonicalise up front: cells, journal metadata and telemetry all
    # key on names, so an alias ("hijack") must never leak into them
    scenarios = [
        get_scenario(s).name
        for s in (scenarios if scenarios is not None else available_scenarios())
    ]
    policies = [
        get_policy(p).name
        for p in (policies if policies is not None else available_policies())
    ]
    strategies = [
        get_strategy(s).name
        for s in (strategies if strategies is not None else available_strategies())
    ]
    levels = [float(f) for f in levels]

    journal = coerce_journal(journal)
    done: dict[tuple[str, str, str, float], AttackMatrixCell] = {}
    if journal is not None:
        _check_journal_scenarios(journal, scenarios)
        journal.ensure_header(
            MATRIX_JOURNAL_KIND,
            _matrix_meta(env, scenarios, policies, strategies, levels, samples, seed),
        )
        for record in journal.iter_records():
            if record.get("type") == "cell":
                cell = cell_from_dict(record["cell"])
                done[cell.key] = cell

    graph = env.graph
    pairs = sample_pairs(graph, samples=samples, seed=seed)
    deriver = StateDeriver(graph, stub_breaks_ties, env.cache.compiled)

    registry = get_registry()
    tracer = get_tracer()
    guard = current_guard()
    cell_timer = registry.histogram("security.attack.cell_seconds")
    total = len(scenarios) * len(policies) * len(strategies) * len(levels)
    cells: list[AttackMatrixCell] = []
    with tracer.span("attack.matrix", cells=total):
        for strategy_name in strategies:
            strategy = get_strategy(strategy_name)
            states = strategy.states(
                graph, levels, seed=seed, theta=0.05, cache=env.cache,
            )
            for level, state in states:
                node_secure = deriver.node_secure(state)
                breaks = deriver.breaks_ties(node_secure)
                fraction_secure = float(node_secure.sum()) / max(1, graph.n)
                for scenario_name in scenarios:
                    for policy_name in policies:
                        key = (scenario_name, policy_name, strategy_name, level)
                        replayed = done.get(key)
                        if replayed is not None:
                            registry.counter("security.attack.cells_replayed").inc()
                            cells.append(replayed)
                            if on_cell is not None:
                                on_cell(replayed, "replayed")
                            continue
                        # cell boundary: everything finished is journaled,
                        # so DeadlineExceeded here resumes losslessly
                        guard.check_deadline(
                            f"attack-matrix cell {key}"
                        )
                        with tracer.span(
                            "attack.cell", scenario=scenario_name,
                            policy=policy_name, strategy=strategy_name,
                            level=level,
                        ), cell_timer.time():
                            cell = _run_cell(
                                graph, pairs, node_secure, breaks,
                                scenario_name, policy_name, strategy_name,
                                level, fraction_secure, backend,
                                env.cache.compiled,
                            )
                        registry.counter("security.attack.cells").inc()
                        if journal is not None:
                            journal.append(
                                {"type": "cell", "cell": cell_to_dict(cell)}
                            )
                        cells.append(cell)
                        if on_cell is not None:
                            on_cell(cell, "computed")
    return cells


def _run_cell(
    graph,
    pairs,
    node_secure,
    breaks,
    scenario: str,
    policy: str,
    strategy: str,
    level: float,
    fraction_secure: float,
    backend: str | None,
    compiled,
) -> AttackMatrixCell:
    """Evaluate one cell on the shared pair sample (kernel fast path)."""
    try:
        outcomes = simulate_attacks_batched(
            graph, pairs, node_secure, breaks,
            scenario=scenario, policy=policy, backend=backend,
            compiled=compiled,
        )
    except ConvergenceError:
        return AttackMatrixCell(
            scenario=scenario, policy=policy, strategy=strategy,
            level=level, samples=len(pairs),
            fraction_secure=fraction_secure,
            mean_fraction_fooled=0.0, max_fraction_fooled=0.0,
            outcome="no-convergence",
        )
    impact = impact_from_outcomes(outcomes)
    return AttackMatrixCell(
        scenario=scenario, policy=policy, strategy=strategy,
        level=level, samples=impact.samples,
        fraction_secure=fraction_secure,
        mean_fraction_fooled=impact.mean_fraction_fooled,
        max_fraction_fooled=impact.max_fraction_fooled,
        outcome="ok",
    )


def matrix_to_rows(cells: Iterable[AttackMatrixCell]) -> list[list[object]]:
    """Rows for :func:`repro.experiments.report.format_table`."""
    return [
        [
            c.scenario,
            c.policy,
            c.strategy,
            f"{c.level:.2f}",
            f"{c.fraction_secure:.3f}",
            f"{c.mean_fraction_fooled:.3f}",
            f"{c.max_fraction_fooled:.3f}",
            c.outcome,
        ]
        for c in cells
    ]
