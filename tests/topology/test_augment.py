"""Tests for the Appendix-D CP-peering augmentation."""

from __future__ import annotations

import pytest

from repro.topology.augment import augment_cp_peering, mean_cp_path_length
from repro.topology.generator import generate_topology


@pytest.fixture(scope="module")
def augmented_pair():
    base = generate_topology(n=300, seed=13)
    before = {cp: mean_cp_path_length(base.graph, cp) for cp in base.cp_asns}
    graph = base.graph.copy()
    graph.set_content_providers(base.cp_asns)
    report = augment_cp_peering(
        graph,
        base.all_ixp_member_asns,
        target_mean_path_length=2.0,
        seed=13,
    )
    return base, graph, before, report


class TestAugmentation:
    def test_path_lengths_drop(self, augmented_pair):
        base, graph, before, report = augmented_pair
        for cp in base.cp_asns:
            after = mean_cp_path_length(graph, cp)
            assert after <= before[cp] + 1e-9

    def test_peerings_added(self, augmented_pair):
        base, graph, before, report = augmented_pair
        assert sum(report.added_peerings.values()) > 0
        assert graph.num_peering_edges() > base.graph.num_peering_edges()

    def test_cp_degree_grows(self, augmented_pair):
        base, graph, before, report = augmented_pair
        for cp in base.cp_asns:
            # Table 4's direction: CP degree grows several-fold; the
            # absolute Tier-1 parity of the paper needs the IXP pool of
            # a full-size graph.
            assert graph.degree(cp) >= 3 * base.graph.degree(cp)

    def test_graph_still_valid(self, augmented_pair):
        _, graph, _, _ = augmented_pair
        graph.validate()

    def test_cp_customers_removed(self, augmented_pair):
        base, graph, _, report = augmented_pair
        for cp in base.cp_asns:
            assert graph.customers_of(cp) == []

    def test_keep_customers_option(self):
        base = generate_topology(n=150, seed=14)
        graph = base.graph.copy()
        graph.set_content_providers(base.cp_asns)
        report = augment_cp_peering(
            graph,
            base.all_ixp_member_asns,
            remove_cp_customers=False,
            target_mean_path_length=2.0,
            seed=1,
        )
        assert all(not removed for removed in report.removed_customers.values())

    def test_respects_per_cp_limit(self):
        base = generate_topology(n=150, seed=15)
        graph = base.graph.copy()
        graph.set_content_providers(base.cp_asns)
        report = augment_cp_peering(
            graph,
            base.all_ixp_member_asns,
            target_mean_path_length=1.0,  # unreachable: forces the limit
            max_new_peerings_per_cp=3,
            seed=1,
        )
        assert all(count <= 3 for count in report.added_peerings.values())
