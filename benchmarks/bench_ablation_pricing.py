"""Ablation (§8.4): pricing policies between traffic and revenue.

The paper prices revenue linearly in transited traffic and calls the
mapping out as an extension.  The bench compares linear, tiered
(flat-rate capacity units of growing size) and concave (volume
discount) pricing.  Expected shape: coarser tiers hide the small
traffic gains that motivate marginal adopters, so adoption declines
monotonically with tier size; concave pricing sits between.
"""

from __future__ import annotations

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.core.pricing import Pricing, PricingModel
from repro.experiments.report import format_table

THETA = 0.05


def test_ablation_pricing(benchmark, env, capsys):
    def run_all():
        graph = env.graph
        adopters = cps_plus_top_isps(graph, 5)
        schemes = {
            "linear": Pricing(model=PricingModel.LINEAR),
            "tiered (tier=20)": Pricing(model=PricingModel.TIERED, tier=20.0),
            "tiered (tier=200)": Pricing(model=PricingModel.TIERED, tier=200.0),
            "concave (a=0.7)": Pricing(model=PricingModel.CONCAVE, alpha=0.7),
        }
        rows = []
        for name, pricing in schemes.items():
            result = run_deployment(
                graph, adopters, SimulationConfig(theta=THETA),
                env.cache, pricing=pricing,
            )
            rows.append((name, float(result.final_node_secure.mean()),
                         result.num_rounds))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["pricing", "frac secure", "rounds"],
            [[n, f"{s:.3f}", r] for n, s, r in rows],
            title=f"Ablation: pricing model (theta={THETA:.0%})",
        ))

    by = {name: secure for name, secure, _ in rows}
    assert by["tiered (tier=200)"] <= by["tiered (tier=20)"] + 1e-9
    assert by["tiered (tier=200)"] <= by["linear"] + 1e-9
