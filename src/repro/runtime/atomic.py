"""Atomic, validated file persistence.

The paper's cluster runs lasted hours; ours can too, and a result file
that is half-written when the process dies is worse than no file — it
shadows the good data from the previous run.  Every writer in the repo
therefore goes through :func:`atomic_write_text`: write to a temp file
in the same directory, flush + fsync, then ``os.replace`` over the
target (atomic on POSIX and Windows).  JSON payloads additionally carry
a ``checksum`` field so loaders can tell torn writes and bit rot apart
from schema drift.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.runtime.errors import CorruptFileError, SchemaError

CHECKSUM_KEY = "checksum"


def checksum_payload(payload: dict[str, Any]) -> str:
    """Canonical SHA-256 of a JSON payload (excluding its checksum field)."""
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fsync_directory(path: str | Path) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows directory opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems support it
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + replace).

    Readers never observe a partial file: they see either the old
    content or the new content in full, even across a crash mid-write.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent or Path("."))


def atomic_write_json(
    path: str | Path,
    payload: dict[str, Any],
    *,
    checksum: bool = True,
    indent: int | None = 1,
) -> None:
    """Serialise ``payload`` as JSON and write it atomically.

    With ``checksum=True`` (default) a ``checksum`` field is embedded;
    :func:`load_checked_json` verifies and strips it on the way back in.
    """
    if checksum:
        payload = {**payload, CHECKSUM_KEY: checksum_payload(payload)}
    atomic_write_text(path, json.dumps(payload, indent=indent))


def parse_checked_json(
    text: str, *, source: str | Path = "<stream>", expected_format: str | None = None
) -> dict[str, Any]:
    """Parse + validate a JSON payload string (see :func:`load_checked_json`)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptFileError(source, f"truncated or corrupt JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise SchemaError(f"{source}: expected a JSON object, got {type(payload).__name__}")
    stored = payload.pop(CHECKSUM_KEY, None)
    if stored is not None:
        expected = checksum_payload(payload)
        if stored != expected:
            raise CorruptFileError(
                source, f"checksum mismatch (stored {stored}, computed {expected})"
            )
    if expected_format is not None:
        fmt = payload.get("format")
        if fmt != expected_format:
            raise SchemaError(f"{source}: unrecognised format: {fmt!r}")
    return payload


def load_checked_json(
    path: str | Path, *, expected_format: str | None = None
) -> dict[str, Any]:
    """Load a JSON file written by :func:`atomic_write_json`.

    Raises :class:`~repro.runtime.errors.CorruptFileError` on truncated
    or checksum-failing bytes and
    :class:`~repro.runtime.errors.SchemaError` on a wrong/missing
    ``format`` marker — never a raw ``json.JSONDecodeError``.  Files
    without a checksum field (pre-resilience writers, hand-edited
    inputs) load fine; the checksum is only verified when present.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptFileError(path, f"undecodable bytes ({exc})") from exc
    return parse_checked_json(text, source=path, expected_format=expected_format)
