"""Bring your own topology: CAIDA as-rel files and hand-built graphs.

Shows the two ways to run the simulator on non-generated data:

1. write/read the standard CAIDA ``as-rel`` format (real Cyclops /
   CAIDA serial-1 snapshots load the same way);
2. build a small AS graph by hand and watch a single DIAMOND drive
   both competitors to deploy.

Usage::

    python examples/custom_topology.py
"""

from __future__ import annotations

import io

from repro import ASGraph, SimulationConfig, run_deployment
from repro.topology import dumps_as_rel, loads_as_rel

AS_REL_SNIPPET = """\
# a miniature internet in CAIDA as-rel format
# cp: 500
1|2|0
1|10|-1
2|20|-1
1|20|-1
10|100|-1
20|100|-1
10|500|-1
"""


def caida_roundtrip_demo() -> None:
    print("=" * 64)
    print("1. Loading a CAIDA as-rel snapshot")
    graph = loads_as_rel(io.StringIO(AS_REL_SNIPPET).read())
    print(f"  loaded {graph.n} ASes, "
          f"{graph.num_customer_provider_edges()} customer-provider edges, "
          f"{graph.num_peering_edges()} peerings; CPs: {sorted(graph.cp_asns)}")
    print("  re-serialised:")
    for line in dumps_as_rel(graph).splitlines():
        print(f"    {line}")


def hand_built_demo() -> None:
    print("=" * 64)
    print("2. A hand-built DIAMOND, simulated")
    g = ASGraph()
    for asn in (1, 2, 3, 9):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=2)   # Tier-1 -> ISP A
    g.add_customer_provider(provider=1, customer=3)   # Tier-1 -> ISP B
    g.add_customer_provider(provider=2, customer=9)   # both provide the stub
    g.add_customer_provider(provider=3, customer=9)
    g.validate()
    g.set_weight(1, 10.0)  # the Tier-1 sources real traffic

    result = run_deployment(g, early_adopter_asns=[1],
                            config=SimulationConfig(theta=0.01))
    for record in result.rounds:
        adopters = [g.asn(i) for i in record.turned_on]
        print(f"  round {record.index}: {adopters or 'stable'}")
    secure = [g.asn(i) for i in range(g.n) if result.final_node_secure[i]]
    print(f"  secure at termination: {secure}")
    print("  -> the competitor that lost the Tier-1's tie-break deploys"
          " first; the other follows to win its traffic back.")


if __name__ == "__main__":
    caida_roundtrip_demo()
    hand_built_demo()
