"""Attack-resilience quantification under partial deployment (§2.2.1, §6.4)."""

from repro.security.hijack import HijackOutcome, simulate_hijack
from repro.security.metrics import (
    AttackImpact,
    end_state_everyone_secure,
    impact_for_state,
    sample_attack_impact,
)

__all__ = [
    "AttackImpact",
    "HijackOutcome",
    "end_state_everyone_secure",
    "impact_for_state",
    "sample_attack_impact",
    "simulate_hijack",
]
