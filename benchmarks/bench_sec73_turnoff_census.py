"""§7.3: how common are incentives to disable S*BGP?

Paper: whole-network turn-off incentives exist (Fig. 13) but are rare;
at least 10% of the 5,992 ISPs can find a state where disabling S*BGP
for *one destination* pays.  Here the state searched is the
wide-deployment outcome of the outgoing game (the paper likewise scans
deployed states of its empirical graph), and gains are evaluated under
the incoming utility model.  Shapes: per-destination incentives touch a
sizeable minority of ISPs; whole-network ones are (near) absent.
"""

from __future__ import annotations

from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import DeploymentSimulation
from repro.experiments.turnoff import (
    per_destination_turn_off_census,
    whole_network_turn_off_census,
)


def test_sec73_turn_off_census(benchmark, env, capsys):
    def run():
        config = SimulationConfig(theta=0.05, utility_model=UtilityModel.OUTGOING)
        sim = DeploymentSimulation(
            env.graph, env.case_study_adopters(), config, env.cache
        )
        state = sim.run().final_state
        whole = whole_network_turn_off_census(env, state, stub_breaks_ties=True)
        per_dest = per_destination_turn_off_census(env, state, stub_breaks_ties=True)
        return whole, per_dest

    whole, per_dest = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Sec 7.3: turn-off incentive census (incoming utility, deployed state)")
        print(f"  secure ISPs examined          : {per_dest.num_secure_isps}")
        print(f"  whole-network incentive       : {whole.num_with_incentive} "
              f"({whole.fraction:.1%}; paper: rare)")
        print(f"  >=1 per-destination incentive : {per_dest.num_with_incentive} "
              f"({per_dest.fraction:.1%}; paper: >=10% of ISPs)")
        if per_dest.examples:
            print(f"  examples: {list(per_dest.examples)[:5]}")
    assert per_dest.num_with_incentive >= whole.num_with_incentive
    assert per_dest.num_secure_isps > 0
    assert per_dest.num_with_incentive > 0, (
        "no per-destination turn-off incentives found at all"
    )
