"""Layer-1 foundation package (clean)."""

FOUNDATION = 1
