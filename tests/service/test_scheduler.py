"""Scheduler: end-to-end job runs, coalescing, cancel, suspend-resume.

These drive the scheduler directly (no HTTP) on tiny topologies.  The
acceptance-grade assertions live here: overlapping grids hit the shared
cell cache, results are bit-identical to a cold ``run_sweep``, and a
graceful stop mid-job re-queues it with its finished cells journaled.
"""

from __future__ import annotations

import time

import pytest

from repro import telemetry
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import cell_from_dict, run_sweep
from repro.service.cache import ResultCache
from repro.service.errors import JobStateError
from repro.service.scheduler import Scheduler
from repro.service.specs import parse_spec
from repro.service.store import JobStore
from repro.telemetry.metrics import set_registry
from repro.telemetry.spans import set_tracer

# one tiny environment for every job in this module
ENV = {"n": 80, "seed": 7, "x": 0.10}


def spec(**overrides):
    payload = {**ENV, "thetas": [0.0, 0.05], "adopter_sets": ["none", "top-5"]}
    payload.update(overrides)
    return parse_spec(payload)


def wait_for(job, states=("done", "failed", "cancelled"), timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in states:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job.id} stuck in {job.state!r} (wanted {states})")


@pytest.fixture()
def live_telemetry():
    registry, _ = telemetry.enable()
    yield registry
    set_registry(None)
    set_tracer(None)


@pytest.fixture()
def scheduler(tmp_path, live_telemetry):
    store = JobStore(tmp_path / "store")
    cache = ResultCache()
    sched = Scheduler(store, cache, workers=1)
    sched.start()
    yield sched
    sched.stop()


class TestExecution:
    def test_sweep_job_runs_to_done_with_progress(self, scheduler):
        job, created = scheduler.submit(spec())
        assert created
        wait_for(job)
        assert job.state == "done", job.error
        assert (job.progress_done, job.progress_total) == (4, 4)
        result = scheduler.store.load_result(job)
        assert len(result["cells"]) == 4

    def test_results_bit_identical_to_cold_sweep(self, scheduler):
        job, _ = scheduler.submit(spec())
        wait_for(job)
        assert job.state == "done", job.error
        served = [cell_from_dict(c) for c in scheduler.store.load_result(job)["cells"]]

        env = build_environment(**ENV, warm=True)
        sets = env.adopter_sets()
        cold = run_sweep(
            env, thetas=(0.0, 0.05),
            adopter_sets={"none": sets["none"], "top-5": sets["top-5"]},
        )
        key = lambda c: (c.adopters, c.theta)
        assert sorted(served, key=key) == sorted(cold, key=key)

    def test_case_study_job(self, scheduler):
        job, _ = scheduler.submit(parse_spec({**ENV, "kind": "case-study"}))
        wait_for(job)
        assert job.state == "done", job.error
        result = scheduler.store.load_result(job)
        assert result["kind"] == "case-study"
        assert 0.0 <= result["fraction_secure_ases"] <= 1.0

    def test_unknown_adopter_set_fails_cleanly(self, scheduler):
        job, _ = scheduler.submit(spec(adopter_sets=["not-a-set"]))
        wait_for(job)
        assert job.state == "failed"
        assert "not-a-set" in job.error


class TestSharing:
    def test_overlapping_grids_share_cells_and_arena(self, scheduler, live_telemetry):
        first, _ = scheduler.submit(spec(thetas=[0.0, 0.05]))
        wait_for(first)
        assert first.state == "done", first.error

        # a *different* job (superset grid) on the same environment:
        # the 4 overlapping cells and the warmed arena must be reused
        second, created = scheduler.submit(spec(thetas=[0.0, 0.05, 0.30]))
        assert created and second.id != first.id
        wait_for(second)
        assert second.state == "done", second.error

        stats = scheduler.cache.stats()
        assert stats.cell_hits >= 4
        assert stats.arena_hits >= 1
        counters = live_telemetry.snapshot()["counters"]
        assert counters["service.cache.cell_hits"] >= 4
        assert counters["sweep.cells_from_cache"] >= 4

        # shared cells are value-identical to computed ones
        first_cells = {
            (c["adopters"], c["theta"]): c
            for c in scheduler.store.load_result(first)["cells"]
        }
        for cell in scheduler.store.load_result(second)["cells"]:
            if (cell["adopters"], cell["theta"]) in first_cells:
                assert cell == first_cells[(cell["adopters"], cell["theta"])]

    def test_identical_active_specs_coalesce(self, scheduler):
        first, created1 = scheduler.submit(spec())
        second, created2 = scheduler.submit(spec())
        assert created1
        assert not created2 and second is first
        wait_for(first)
        assert first.state == "done"


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path, live_telemetry):
        store = JobStore(tmp_path / "store")
        sched = Scheduler(store, ResultCache(), workers=1)  # never started
        job, _ = sched.submit(spec())
        cancelled = sched.cancel(job.id)
        assert cancelled.state == "cancelled"
        with pytest.raises(JobStateError):
            sched.cancel(job.id)

    def test_cancel_running_job_stops_at_a_cell_boundary(self, scheduler):
        # a wide grid so there is always a next cell to cancel before
        job, _ = scheduler.submit(spec(
            thetas=[0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50],
            adopter_sets=[],  # the full 7-set menu: 56 cells
        ))
        deadline = time.monotonic() + 120
        while job.progress_done < 1 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert job.progress_done >= 1, "job never made progress"
        scheduler.cancel(job.id)
        wait_for(job)
        assert job.state == "cancelled"
        assert job.progress_done < job.progress_total  # stopped early


class TestGracefulStop:
    def test_stop_requeues_running_job_with_cells_journaled(self, tmp_path, live_telemetry):
        store = JobStore(tmp_path / "store")
        sched = Scheduler(store, ResultCache(), workers=1)
        sched.start()
        job, _ = sched.submit(spec(
            thetas=[0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50],
            adopter_sets=[],
        ))
        deadline = time.monotonic() + 120
        while job.progress_done < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert job.progress_done >= 2
        sched.stop()
        assert job.state == "queued"  # suspended, not cancelled

        # the finished cells are durably journaled under the spec digest
        from repro.runtime.journal import RunJournal

        journal = RunJournal(store.sweep_journal_path(job))
        finished = [r for r in journal.iter_records() if r.get("type") == "cell"]
        assert len(finished) >= 2

        # a fresh scheduler (the restarted daemon) resumes and finishes
        store2 = JobStore(tmp_path / "store")
        assert store2.get(job.id).state == "queued"
        sched2 = Scheduler(store2, ResultCache(), workers=1)
        sched2.start()
        try:
            resumed = wait_for(store2.get(job.id), timeout=240)
            assert resumed.state == "done", resumed.error
            result = store2.load_result(resumed)
            assert len(result["cells"]) == resumed.progress_total
            assert len(result["cells"]) > len(finished)  # finished what was left
            counters = live_telemetry.snapshot()["counters"]
            assert counters["sweep.cells_replayed"] >= 2
        finally:
            sched2.stop()
