"""Package __init__ whose bare re-export must NOT rescue a symbol."""

from repro.fixture017.core import dead_export, used_helper

__all__ = ["dead_export", "used_helper"]


def package_entry() -> int:  # expect: RPR017 -- __init__ definitions are checked too
    # used_helper is *called* here, not just re-imported: that rescues it
    return used_helper()
