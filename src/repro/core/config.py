"""Simulation configuration (the paper's parameter space, §6.2)."""

from __future__ import annotations

import dataclasses
import enum


class UtilityModel(enum.Enum):
    """The two ISP utility models of Section 3.3.

    ``OUTGOING``: traffic an ISP forwards toward destinations reached
    over a customer edge (Eq. 1).  Theorem 6.2: secure ISPs never want
    to turn S*BGP off, so the process always terminates.

    ``INCOMING``: traffic an ISP receives over customer edges (Eq. 2).
    ISPs may want to turn S*BGP off (Fig. 13) and the process can
    oscillate forever (Theorem 7.1).
    """

    OUTGOING = "outgoing"
    INCOMING = "incoming"


class ProjectionEngine(enum.Enum):
    """How projected utilities are computed.

    ``FULL`` recomputes every relevant routing tree in the flipped
    state (vectorised); ``INCREMENTAL`` propagates security deltas
    through the tiebreak graph (output-sensitive; exact same results).
    Both prune with the Appendix-C.4 destination filters.  FULL is the
    default: the filters leave so few destinations that its vectorised
    recompute beats per-node Python propagation up to several thousand
    ASes (see ``benchmarks/bench_kernel_projection.py``).
    """

    FULL = "full"
    INCREMENTAL = "incremental"


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the deployment game.

    ``theta`` is the deployment threshold of update rule (3): an ISP
    flips iff its projected utility exceeds ``(1 + theta)`` times its
    current utility.  The paper sweeps theta in [0, 0.5].
    """

    theta: float = 0.05
    utility_model: UtilityModel = UtilityModel.OUTGOING
    stub_breaks_ties: bool = True
    projection: ProjectionEngine = ProjectionEngine.FULL
    max_rounds: int = 200
    #: routing-policy registry name (or alias) driving route selection:
    #: "security_3rd" is the paper's Appendix-A ranking; "security_2nd"
    #: / "security_1st" promote SecP (Lychev et al.); "sp_first" /
    #: "sticky_primaries" are the §8.3 deviations
    policy: str = "security_3rd"
    #: secure ISPs may turn S*BGP off (only meaningful under INCOMING;
    #: Theorem 6.2 rules it out under OUTGOING, where it is ignored)
    allow_turn_off: bool = True
    #: number of worker processes for the per-destination map step
    workers: int = 1
    #: record per-round utilities of every AS in the history (memory!)
    record_utilities: bool = True

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        from repro.routing.policy import get_policy

        # resolve aliases eagerly so equal configs compare equal and the
        # journal always records the canonical name
        object.__setattr__(self, "policy", get_policy(self.policy).name)

    @property
    def turn_off_enabled(self) -> bool:
        """Whether this run ever evaluates disabling S*BGP."""
        return self.allow_turn_off and self.utility_model is UtilityModel.INCOMING
