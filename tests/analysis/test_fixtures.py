"""Golden fixture tests: every rule's positive/waived/clean cases.

Each fixture under ``fixtures/`` is linted with the FULL rule set and
must produce exactly the findings named by its ``expect: CODE`` line
markers — nothing more (clean and waived lines stay silent), nothing
less (positives fire where claimed).  This pins both the rules and the
suppression machinery in one pass per rule.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("*.py"))

_EXPECT = re.compile(r"expect:\s*(RPR\d{3})")

# Optional first-line marker: ``# module: repro.service.daemon`` gives a
# fixture a module identity so package-scoped rules (RPR012) can fire.
_MODULE = re.compile(r"^#\s*module:\s*([\w.]+)\s*$", re.MULTILINE)


def expected_findings(text: str) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            out.append((lineno, match.group(1)))
    return sorted(out)


def fixture_module(text: str) -> str | None:
    match = _MODULE.search(text)
    return match.group(1) if match else None


def test_fixture_suite_is_complete():
    """One golden fixture per rule code (plus the RPR010 meta-rule).

    Program rules (RPR015+) are covered by fixture *packages* —
    directories named after their code, driven by test_program.py.
    """
    covered = {f.name[:6].upper() for f in FIXTURES}
    covered |= {d.name[:6].upper() for d in FIXTURE_DIR.iterdir() if d.is_dir()}
    expected = (
        {f"RPR00{i}" for i in range(1, 10)}
        | {"RPR010", "RPR011", "RPR012", "RPR013", "RPR014"}
        | {"RPR015", "RPR016", "RPR017"}
    )
    assert covered >= expected


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_findings_match_markers(fixture: Path):
    text = fixture.read_text(encoding="utf-8")
    expected = expected_findings(text)
    assert expected, f"{fixture.name} has no expect markers — not a golden fixture"
    findings = lint_source(text, path=fixture.name, module=fixture_module(text))
    got = sorted((f.line, f.code) for f in findings)
    assert got == expected


@pytest.mark.parametrize("fixture", FIXTURES, ids=lambda p: p.stem)
def test_fixture_findings_carry_location_and_rule_name(fixture: Path):
    findings = lint_source(fixture.read_text(encoding="utf-8"), path=fixture.name)
    for finding in findings:
        assert finding.path == fixture.name
        assert finding.line >= 1 and finding.col >= 1
        assert finding.rule and finding.message
