"""Figure 12: content providers vs Tier-1s as early adopters (§6.8).

Paper shapes to reproduce:

(a) at x = 10% the top-5 Tier-1s out-recruit the 5 CPs (they transit
    2-9x more traffic); as x grows toward 50% the CPs catch up and win
    at low theta;
(b) on the augmented graph (CPs peered widely at IXPs) the CPs'
    influence improves relative to the original graph.
"""

from __future__ import annotations

from repro.experiments.cp_vs_tier1 import run_cp_vs_tier1
from repro.experiments.report import format_table

THETAS = (0.0, 0.05, 0.30)
X_VALUES = (0.10, 0.50)


def _rows(cells):
    return [
        [f"{c.x:.2f}", c.adopters, f"{c.theta:.2f}",
         f"{c.fraction_secure_ases:.3f}", f"{c.fraction_secure_isps:.3f}"]
        for c in cells
    ]


def test_fig12a_traffic_volume_sweep(benchmark, env, capsys):
    cells = benchmark.pedantic(
        lambda: run_cp_vs_tier1(env, thetas=THETAS, x_values=X_VALUES),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["x", "adopters", "theta", "frac ASes", "frac ISPs"],
            _rows(cells), title="Fig 12a: CPs vs Tier-1s across traffic volumes",
        ))

    def frac(x, who, theta):
        return next(
            c.fraction_secure_ases
            for c in cells if c.x == x and c.adopters == who and c.theta == theta
        )

    # CPs gain influence as their traffic share grows
    assert frac(0.50, "5-cps", 0.05) >= frac(0.10, "5-cps", 0.05) - 1e-9


def test_fig12b_augmented_graph(benchmark, env, env_augmented, capsys):
    def run_both():
        return {
            False: run_cp_vs_tier1(env, thetas=(0.05,), x_values=(0.10,)),
            True: run_cp_vs_tier1(env_augmented, thetas=(0.05,), x_values=(0.10,)),
        }

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for augmented, cells in out.items():
        for c in cells:
            rows.append([
                "augmented" if augmented else "original", c.adopters,
                f"{c.fraction_secure_ases:.3f}",
            ])
    with capsys.disabled():
        print()
        print(format_table(
            ["graph", "adopters", "frac ASes"],
            rows, title="Fig 12b: original vs augmented graph (theta=5%, x=10%)",
        ))

    cp_orig = next(c for c in out[False] if c.adopters == "5-cps")
    cp_aug = next(c for c in out[True] if c.adopters == "5-cps")
    # CP influence must not degrade when their connectivity improves
    assert cp_aug.fraction_secure_ases >= cp_orig.fraction_secure_ases - 0.1
