"""Scale-invariance study: does the substitution hold?

DESIGN.md argues the paper's results follow from *structural*
statistics — degree skew, 85% stubs, tiny tiebreak sets, short paths —
that the synthetic generator preserves at any size.  This study runs
the same experiment at several scales and reports the statistics the
argument rests on next to the deployment outcome, so drift with N is
visible rather than assumed.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.config import SimulationConfig
from repro.core.dynamics import run_deployment
from repro.experiments.setup import build_environment
from repro.routing.tiebreak import (
    collect_tiebreak_stats,
    security_sensitive_decision_fraction,
)
from repro.topology.stats import summarize


@dataclasses.dataclass(frozen=True)
class ScalePoint:
    """Structure + outcome at one graph size."""

    n: int
    stub_fraction: float
    mean_tiebreak: float
    multi_path_fraction: float
    security_sensitive_fraction: float   # the §6.7 number
    fraction_secure_ases: float          # case-study outcome
    num_rounds: int


def run_scaling_study(
    sizes: Sequence[int] = (250, 500, 1000),
    theta: float = 0.05,
    seed: int = 2011,
    x: float = 0.10,
    tiebreak_sample: int = 150,
) -> list[ScalePoint]:
    """Case study + structural statistics at each size."""
    points: list[ScalePoint] = []
    for n in sizes:
        env = build_environment(n=n, seed=seed, x=x)
        summary = summarize(env.graph)
        sample = list(range(0, env.graph.n, max(1, env.graph.n // tiebreak_sample)))
        stats = collect_tiebreak_stats(
            env.graph, destinations=sample, dest_routing=env.cache.dest_routing
        )
        result = run_deployment(
            env.graph,
            env.case_study_adopters(),
            SimulationConfig(theta=theta),
            env.cache,
        )
        points.append(
            ScalePoint(
                n=n,
                stub_fraction=summary.stub_fraction,
                mean_tiebreak=stats.mean,
                multi_path_fraction=stats.multi_path_fraction,
                security_sensitive_fraction=security_sensitive_decision_fraction(
                    env.graph, stats
                ),
                fraction_secure_ases=float(result.final_node_secure.mean()),
                num_rounds=result.num_rounds,
            )
        )
    return points
