"""Policy metadata in sweeps and journals.

The active routing policy is part of a run's identity: a sweep journal
records it in the header, and resuming under a *different* policy must
fail loudly (cells computed under different rankings are incomparable),
with a :class:`~repro.runtime.errors.SchemaError` naming both policies.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.dynamics import DeploymentSimulation
from repro.experiments.setup import build_environment
from repro.experiments.sweeps import SWEEP_JOURNAL_KIND, run_sweep
from repro.runtime.errors import SchemaError
from repro.runtime.journal import RunJournal

THETAS = (0.05,)


@pytest.fixture(scope="module")
def tiny_env():
    return build_environment(n=120, seed=11, x=0.10, warm=True)


def adopter_sets(env):
    sets = env.adopter_sets()
    return {"top-5": sets["top-5"]}


class TestSweepJournalPolicy:
    def test_header_records_policy(self, tiny_env, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_sweep(
            tiny_env, thetas=THETAS, adopter_sets=adopter_sets(tiny_env),
            journal=path,
        )
        header = RunJournal(path).header()
        assert header["meta"]["policy"] == "security_3rd"

    def test_resume_under_different_policy_raises_schema_error(
        self, tiny_env, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        journal = RunJournal(path)
        meta = {"policy": "security_1st", "num_ases": tiny_env.graph.n}
        journal.ensure_header(SWEEP_JOURNAL_KIND, meta)
        with pytest.raises(SchemaError) as excinfo:
            run_sweep(
                tiny_env, thetas=THETAS, adopter_sets=adopter_sets(tiny_env),
                journal=journal,
            )
        message = str(excinfo.value)
        assert "security_1st" in message and "security_3rd" in message

    def test_legacy_journal_without_policy_means_default(
        self, tiny_env, tmp_path
    ):
        """Journals written before the policy field are default-policy
        journals; resuming them under the default must not raise the
        policy error (the generic metadata check still applies)."""
        from repro.experiments.sweeps import _check_journal_policy

        path = tmp_path / "legacy.jsonl"
        journal = RunJournal(path)
        journal.ensure_header(SWEEP_JOURNAL_KIND, {"num_ases": 5})
        _check_journal_policy(journal, "security_3rd")  # no raise
        with pytest.raises(SchemaError):
            _check_journal_policy(journal, "security_2nd")


class TestSimulationJournalPolicy:
    def test_round_journal_records_policy(self, tiny_env, tmp_path):
        path = tmp_path / "sim.jsonl"
        config = SimulationConfig(theta=0.05, max_rounds=3)
        sim = DeploymentSimulation(
            tiny_env.graph, tiny_env.case_study_adopters(), config,
            tiny_env.cache,
        )
        sim.run(journal=path)
        header = RunJournal(path).header()
        assert header["meta"]["policy"] == "security_3rd"

    def test_cache_policy_is_authoritative(self, tiny_env):
        """A shared cache fills in a default config's policy; an explicit
        conflicting config is rejected."""
        from repro.routing.cache import RoutingCache

        cache = RoutingCache(tiny_env.graph, policy="sp_first")
        sim = DeploymentSimulation(
            tiny_env.graph, tiny_env.case_study_adopters(),
            SimulationConfig(theta=0.05), cache,
        )
        assert sim.config.policy == "sp_first"

        with pytest.raises(ValueError, match="conflicts"):
            DeploymentSimulation(
                tiny_env.graph, tiny_env.case_study_adopters(),
                SimulationConfig(theta=0.05, policy="security_2nd"), cache,
            )
