"""Chaos suite: combined faults, deadlines, and the degradation ladder.

The acceptance tests for the runtime guard as a whole:

- a sweep whose cache was warmed under combined kill + hang + slow
  faults, then cut off by a deadline mid-grid, must journal-resume to a
  grid bit-identical to an unfaulted run;
- a run given an artificially small memory budget plus an injected
  shared-memory failure must complete by walking the ladder — pickle
  transport, chunked batches, reduced workers — with every rung visible
  as ``runtime.guard.degraded`` counters and unchanged results;
- preflight repair must be a no-op on clean dumps (hypothesis
  round-trip properties: ``repair(dump(g)) == g``).
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings

from repro.experiments.setup import build_environment
from repro.experiments.sweeps import run_sweep
from repro.parallel.engine import (
    ProcessEngine,
    _DestRoutingBuilder,
    parallel_warm_cache,
)
from repro.routing.arena import RoutingArena
from repro.runtime.errors import DeadlineExceeded
from repro.runtime.faults import FaultInjector
from repro.runtime.guard import Deadline, MemoryBudget, RuntimeGuard, use_guard
from repro.runtime.journal import RunJournal
from repro.runtime.retry import RetryPolicy
from repro.telemetry.metrics import MetricsRegistry, use_registry
from repro.topology.graph import ASGraph
from repro.topology.preflight import preflight_as_rel_text
from repro.topology.serialization import dumps_as_rel

from tests.strategies import as_graphs

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos tests target the fork start method",
)

THETAS = (0.0, 0.05)
FAST_RETRY = RetryPolicy(max_attempts=5, backoff_base=0.01, backoff_max=0.05)
ITEMS = list(range(40))


def square(x: int) -> int:
    return x * x


def adopter_sets(env):
    sets = env.adopter_sets()
    return {"none": [], "top-5": sets["top-5"]}


@pytest.fixture(scope="module")
def clean_env():
    return build_environment(n=120, seed=11, x=0.10, warm=True)


@pytest.fixture(scope="module")
def clean_cells(clean_env):
    """The unfaulted, unguarded grid every chaos run must reproduce."""
    return run_sweep(clean_env, thetas=THETAS, adopter_sets=adopter_sets(clean_env))


class _ClockAdvancingJournal(RunJournal):
    """Burns the whole deadline budget after N durable appends."""

    def __init__(self, path, clock: dict, advance_after: int):
        super().__init__(path)
        self.clock = clock
        self.advance_after = advance_after

    def append(self, record):
        super().append(record)
        self.advance_after -= 1
        if self.advance_after == 0:
            self.clock["now"] += 10_000.0


def _warm_under_faults(cache, state_root) -> ProcessEngine:
    """Warm every destination through an engine injecting kill+hang+slow.

    The injectors chain around the cache's own builder, so the engine is
    mapping real tree builds; results land via the public install API.
    """
    node_secure, breaks_ties = cache.current_state()
    build = _DestRoutingBuilder(
        cache.graph, cache.compiled, cache.policy.name, cache.transform,
        node_secure, breaks_ties,
    )
    for sub in ("hang", "kill"):
        (state_root / sub).mkdir(exist_ok=True)
    slow = FaultInjector({3, 29}, mode="slow", slow_seconds=0.05, fn=build)
    hung = FaultInjector(
        {17}, mode="hang", fail_times=1, state_dir=state_root / "hang",
        hang_seconds=60.0, fn=slow,
    )
    chaos = FaultInjector(
        {41}, mode="kill", fail_times=1, state_dir=state_root / "kill", fn=hung,
    )
    engine = ProcessEngine(workers=2, retry=FAST_RETRY, partition_timeout=0.5)
    todo = cache.pending_destinations()
    for dest, dr in zip(todo, engine.map(chaos, todo)):
        cache.install(dest, dr)
    return engine


@fork_only
class TestDeadlineResumeUnderFaults:
    def test_faulted_sweep_resumes_bit_identically(
        self, clean_cells, tmp_path
    ):
        """Acceptance: kill+hang+slow warm, deadline mid-grid, resume."""
        env = build_environment(n=120, seed=11, x=0.10, warm=False)
        engine = _warm_under_faults(env.cache, tmp_path)
        assert engine.last_stats.worker_deaths >= 1  # the kill fired
        assert engine.last_stats.timeouts >= 1       # the hang was reaped
        env.cache.ensure_arena()

        clock = {"now": 0.0}
        guard = RuntimeGuard(deadline=Deadline(60.0, clock=lambda: clock["now"]))
        path = tmp_path / "sweep.jsonl"
        journal = _ClockAdvancingJournal(path, clock, advance_after=2)
        with use_guard(guard), pytest.raises(DeadlineExceeded) as info:
            run_sweep(
                env, thetas=THETAS, adopter_sets=adopter_sets(env),
                journal=journal,
            )
        assert "sweep cell" in info.value.where
        assert "--resume" in str(info.value)
        # both cells finished before expiry survived in the journal
        assert len(RunJournal(path)) == 2

        before = path.read_text()
        resumed = run_sweep(
            env, thetas=THETAS, adopter_sets=adopter_sets(env),
            journal=RunJournal(path),
        )
        assert resumed == clean_cells  # bit-identical to the unfaulted run
        assert path.read_text().startswith(before)  # replayed, not redone


@fork_only
class TestDegradationLadderEndToEnd:
    def test_small_budget_and_shm_failure_walk_the_ladder(
        self, clean_cells, monkeypatch
    ):
        """Acceptance: pickle transport + chunked batches + reduced
        workers, each rung a visible counter, results unchanged."""
        import repro.parallel.shm as shm

        # workers resolve publish_arena at call time, after the fork,
        # so patching the module attribute reaches every child
        monkeypatch.setattr(shm, "publish_arena", lambda arena, dests=(): None)

        env = build_environment(n=120, seed=11, x=0.10, warm=False)
        num_dests = len(env.cache.destinations)
        total = RoutingArena.estimate_bytes(num_dests, env.graph.n)
        per_dest = max(1, total // num_dests)
        # room for the arena plus ~5 in-flight warm partitions: 8
        # workers must halve to 4 (reduced_workers) but not to serial,
        # and the full round kernel batch must overflow the kernel share
        guard = RuntimeGuard(memory=MemoryBudget(total + 20 * per_dest))

        with use_registry(MetricsRegistry()) as registry, use_guard(guard):
            parallel_warm_cache(env.cache, workers=8)
            assert not env.cache.pending_destinations()  # warm completed
            env.cache.ensure_arena()
            cells = run_sweep(env, thetas=THETAS, adopter_sets=adopter_sets(env))

        counters = registry.snapshot()["counters"]
        assert counters["runtime.guard.degraded.shm_to_pickle"] >= 1
        assert counters["runtime.guard.degraded.reduced_workers"] >= 1
        assert counters["runtime.guard.degraded.chunked_batches"] >= 1
        assert counters["runtime.guard.degraded"] >= 3
        assert guard.ladder.taken("serial_workers") == 0  # stayed parallel
        assert cells == clean_cells  # every rung taken, results unchanged

    def test_tiny_budget_defers_the_warm_entirely(self):
        """The last rung: a budget below the arena estimate skips the
        eager warm and leaves trees to build lazily per destination."""
        guard = RuntimeGuard(memory=MemoryBudget(1024))
        with use_guard(guard):
            env = build_environment(n=60, seed=11, x=0.10, warm=True)
        assert guard.ladder.taken("lazy_warm") == 1
        assert env.cache.pending_destinations()  # nothing built eagerly


@fork_only
class TestNewFaultModes:
    def test_slow_mode_delays_but_completes(self):
        injector = FaultInjector({2}, mode="slow", slow_seconds=0.01, fn=square)
        assert injector(2) == 4

    def test_oom_mode_retried_to_success(self, tmp_path):
        injector = FaultInjector(
            {5}, mode="oom", fail_times=1, state_dir=tmp_path,
            oom_bytes=2**20, fn=square,
        )
        engine = ProcessEngine(workers=2, retry=FAST_RETRY)
        assert engine.map(injector, ITEMS) == [x * x for x in ITEMS]
        assert engine.last_stats.worker_errors >= 1


def canonical(graph: ASGraph) -> tuple:
    """Structure-equality key over what the as-rel format can represent.

    The format carries ASes only through edges and ``# cp:`` markers, so
    isolated non-CP nodes are excluded from the comparison — they cannot
    survive any dump/load cycle, repaired or not.
    """
    edges = sorted((a, b, rel.value) for a, b, rel in graph.edges())
    mentioned = {a for a, b, _ in edges} | {b for _, b, _ in edges} | graph.cp_asns
    return (
        sorted(asn for asn in graph.asns if asn in mentioned),
        sorted(graph.cp_asns),
        edges,
    )


class TestPaperScaleForecast:
    """36K-shaped synthetics: the guard must plan, not discover, OOM.

    A full 36,964 x 36,964 arena forecasts in the hundreds of GiB —
    these tests assert the forecast says so *without allocating*, that a
    budgeted run defers the warm on the forecast alone, and that the
    forecast stays an over-estimate of real packed arenas (the property
    the 36K plan depends on, checked at a size the suite can afford).
    """

    N_PAPER = 36964  # the Cyclops Dec-9-2010 snapshot's AS count

    def test_full_grid_forecast_is_hundreds_of_gib(self):
        total = RoutingArena.estimate_bytes(self.N_PAPER, self.N_PAPER)
        assert total > 100 * 2**30  # dense alone is 9 * 36964^2 ~ 11 GiB
        # sampling destinations is what makes paper scale feasible:
        sampled = RoutingArena.estimate_bytes(256, self.N_PAPER)
        assert sampled < 2 * 2**30

    def test_budgeted_36k_plan_defers_warm_without_allocating(self):
        from repro.runtime.guard import current_guard

        guard = RuntimeGuard(memory=MemoryBudget("8GiB"))
        estimate = RoutingArena.estimate_bytes(self.N_PAPER, self.N_PAPER)
        with use_guard(guard):
            assert not current_guard().fits_memory(estimate)
            # the setup path's exact decision, minus the (unaffordable)
            # topology generation: over budget -> lazy_warm rung
            current_guard().degrade("lazy_warm", "test: 36K arena over budget")
        assert guard.ladder.taken("lazy_warm") == 1

    def test_compiled_to_numpy_is_a_registered_rung(self):
        guard = RuntimeGuard()
        guard.degrade("compiled_to_numpy", "test: backend missing")
        assert guard.ladder.taken("compiled_to_numpy") == 1

    def test_forecast_bounds_real_arenas_with_sampled_dests(self):
        """estimate_bytes >= packed bytes on a 36K-shaped (sampled-dest)
        arena — shrunk to n=600 so the suite can afford to build it."""
        env = build_environment(n=600, seed=11, x=0.10, warm=True,
                                sample_destinations=48)
        arena = env.cache.ensure_arena()
        actual, _ = arena.to_blocks()
        estimate = RoutingArena.estimate_bytes(arena.num_dests, env.graph.n)
        assert estimate >= actual
        assert estimate < 60 * actual  # an over-estimate, not a fantasy


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(as_graphs(with_cps=True))
    def test_repair_of_clean_dump_is_identity(self, graph):
        """repair(dump(g)) == g: preflight never mangles a clean graph."""
        repaired, report = preflight_as_rel_text(dumps_as_rel(graph), mode="repair")
        assert report.dropped_edges == 0
        assert not [i for i in report.issues if i.code != "disconnected"]
        assert canonical(repaired) == canonical(graph)

    @settings(max_examples=40, deadline=None)
    @given(as_graphs(with_cps=True))
    def test_repair_is_idempotent_on_duplicated_input(self, graph):
        """Feeding every edge twice repairs back to the same graph."""
        text = dumps_as_rel(graph)
        edge_lines = [
            line for line in text.splitlines() if line and not line.startswith("#")
        ]
        doubled = text + "\n".join(edge_lines) + "\n"
        repaired, report = preflight_as_rel_text(doubled, mode="repair")
        assert canonical(repaired) == canonical(graph)
        dup_issues = [i for i in report.issues if i.code == "duplicate_edge"]
        assert len(dup_issues) == len(edge_lines)
