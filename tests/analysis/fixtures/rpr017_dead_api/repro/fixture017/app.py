"""Consumer module: a plain import IS a use outside __init__ files."""

from repro.fixture017.core import USED_CONST


def run() -> int:  # expect: RPR017 -- public but nothing references it
    return USED_CONST
