"""Validation of the scale substitution (DESIGN.md §2).

The reproduction replaces the 36,964-AS empirical graph with synthetic
topologies at laptop scale.  This bench runs the case study across
sizes and prints the statistics the paper's argument rests on; if the
shapes drifted with N, the substitution claim would be false.

Expected: stub fraction ~0.85, mean tiebreak ~1.2-1.4, the §6.7 number
in the low single-percent range, and majority adoption at theta = 5%,
at *every* size.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.scaling import run_scaling_study

SIZES = (250, 500, 1000)


def test_scaling_invariance(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: run_scaling_study(sizes=SIZES, theta=0.05),
        rounds=1, iterations=1,
    )
    rows = [
        [p.n, f"{p.stub_fraction:.3f}", f"{p.mean_tiebreak:.2f}",
         f"{p.multi_path_fraction:.2f}", f"{p.security_sensitive_fraction:.3f}",
         f"{p.fraction_secure_ases:.3f}", p.num_rounds]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["N", "stub frac", "mean tiebreak", "multi-path",
             "sec-sensitive (6.7)", "frac secure", "rounds"],
            rows,
            title="Scale invariance (paper at 36,964: 0.85 / 1.18 / 0.20 / 0.035 / 0.85)",
        ))

    for p in points:
        assert abs(p.stub_fraction - 0.85) < 0.05
        assert 1.0 < p.mean_tiebreak < 1.8
        assert 0.0 < p.security_sensitive_fraction < 0.12
        assert p.fraction_secure_ases > 0.5
