"""Policy binding and deployment-state keying of :class:`RoutingCache`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.arena import RoutingArena
from repro.routing.cache import RoutingCache, state_digest
from repro.routing.policy import get_policy


class TestPolicyBinding:
    def test_mixed_policy_install_rejected(self, small_graph):
        cache = RoutingCache(small_graph, policy="security_3rd")
        foreign = get_policy("sp_first").build_dest_routing(small_graph, 0)
        with pytest.raises(ValueError, match="sp_first"):
            cache.install(0, foreign)

    def test_mixed_policy_arena_rejected(self, small_graph):
        cache = RoutingCache(small_graph, policy="security_3rd")
        dests = cache.destinations
        routings = get_policy("sp_first").build_many(small_graph, dests)
        arena = RoutingArena.build(
            small_graph.n, dests, routings, policy="sp_first"
        )
        with pytest.raises(ValueError, match="mixed-policy"):
            cache.install_arena(arena)

    def test_wrong_state_arena_rejected(self, small_graph):
        secure = np.zeros(small_graph.n, dtype=bool)
        secure[::2] = True
        cache = RoutingCache(small_graph, policy="security_2nd")
        pol = get_policy("security_2nd")
        routings = pol.build_many(
            small_graph, cache.destinations,
            node_secure=secure, breaks_ties=secure,
        )
        arena = RoutingArena.build(
            small_graph.n, cache.destinations, routings,
            policy="security_2nd", state_key=state_digest(secure, secure),
        )
        # the cache is still at the all-insecure default state
        with pytest.raises(ValueError, match="deployment state"):
            cache.install_arena(arena)
        cache.ensure_state(secure, secure)
        cache.install_arena(arena)  # now the keys agree
        assert cache.stats().installs == len(cache.destinations)

    def test_stats_report_policy_and_arena(self, small_graph):
        cache = RoutingCache(small_graph, policy="gao-rexford")
        assert cache.policy_name == "security_3rd"
        assert cache.stats().arena_bytes == 0
        cache.ensure_arena()
        stats = cache.stats()
        assert stats.policy == "security_3rd"
        assert stats.arena_bytes > 0
        assert stats.arena_bytes == cache.arena.nbytes


class TestStateKeying:
    def test_state_independent_ignores_state(self, small_graph):
        cache = RoutingCache(small_graph, policy="security_3rd")
        cache.warm()
        secure = np.ones(small_graph.n, dtype=bool)
        assert cache.ensure_state(secure, secure) is False
        assert cache.stats().state_rebuilds == 0
        assert cache.state_key is None

    def test_state_dependent_rebuilds_on_flip(self, small_graph):
        cache = RoutingCache(small_graph, policy="security_2nd")
        cache.warm()
        before = cache.dest_routing(3)
        empty = np.zeros(small_graph.n, dtype=bool)
        # round 0 of a pre-warmed simulation: all-insecure is what the
        # structures were built under, so nothing should rebuild
        assert cache.ensure_state(empty, empty) is False
        assert cache.stats().state_rebuilds == 0

        secure = np.zeros(small_graph.n, dtype=bool)
        secure[::4] = True
        assert cache.ensure_state(secure, secure) is True
        assert cache.stats().state_rebuilds == 1
        assert cache.state_key == state_digest(secure, secure)
        after = cache.dest_routing(3)
        assert after is not before
        assert after.policy == "security_2nd"
        # same state again: a no-op
        assert cache.ensure_state(secure.copy(), secure.copy()) is False
        assert cache.stats().state_rebuilds == 1

    def test_rebuild_restores_arena_when_one_existed(self, small_graph):
        cache = RoutingCache(small_graph, policy="security_2nd")
        cache.ensure_arena()
        secure = np.zeros(small_graph.n, dtype=bool)
        secure[1::3] = True
        assert cache.ensure_state(secure, secure) is True
        assert cache.arena is not None
        assert cache.arena.state_key == state_digest(secure, secure)
        assert cache.arena.policy == "security_2nd"

    def test_structures_actually_differ_across_states(self, small_graph):
        """The point of state keying: under security_2nd a deployment
        flip changes selected classes/lengths for some destination."""
        cache = RoutingCache(small_graph, policy="security_2nd")
        insecure = {d: cache.dest_routing(d).lengths.copy()
                    for d in range(0, small_graph.n, 7)}
        secure = np.zeros(small_graph.n, dtype=bool)
        secure[::2] = True
        cache.ensure_state(secure, secure)
        changed = any(
            (cache.dest_routing(d).lengths != lengths).any()
            for d, lengths in insecure.items()
        )
        assert changed
