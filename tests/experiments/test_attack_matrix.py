"""Tests for the attack × policy × deployment matrix runner."""

from __future__ import annotations

import pytest

from repro.experiments.attack_matrix import (
    AttackMatrixCell,
    cell_from_dict,
    cell_to_dict,
    matrix_to_rows,
    run_attack_matrix,
)
from repro.runtime.errors import JournalMismatchError, SchemaError
from repro.runtime.journal import RunJournal


@pytest.fixture(scope="module")
def cells(medium_env):
    return run_attack_matrix(
        medium_env,
        scenarios=["origin_hijack", "route_leak"],
        policies=["security_3rd"],
        strategies=["top_isp_first"],
        levels=(0.0, 1.0),
        samples=4,
    )


class TestGrid:
    def test_complete_and_unique(self, cells):
        assert len(cells) == 4  # 2 scenarios x 1 policy x 1 strategy x 2 levels
        assert len({c.key for c in cells}) == 4

    def test_cells_well_formed(self, cells):
        for c in cells:
            assert c.outcome in ("ok", "no-convergence")
            assert c.samples == 4
            assert 0.0 <= c.fraction_secure <= 1.0
            assert 0.0 <= c.mean_fraction_fooled <= c.max_fraction_fooled <= 1.0

    def test_deployment_levels_materialise(self, cells):
        by_level = {c.level: c for c in cells if c.scenario == "origin_hijack"}
        assert by_level[0.0].fraction_secure == 0.0
        assert by_level[1.0].fraction_secure > 0.0

    def test_aliases_canonicalised(self, medium_env):
        cells = run_attack_matrix(
            medium_env,
            scenarios=["hijack"],          # alias for origin_hijack
            policies=["security_3rd"],
            strategies=["top_isp_first"],
            levels=(0.0,),
            samples=2,
        )
        assert [c.scenario for c in cells] == ["origin_hijack"]

    def test_unknown_names_fail_fast(self, medium_env):
        with pytest.raises(ValueError, match="unknown attack scenario"):
            run_attack_matrix(medium_env, scenarios=["nope"], levels=(0.0,))
        with pytest.raises(ValueError, match="unknown"):
            run_attack_matrix(medium_env, policies=["nope"], levels=(0.0,))
        with pytest.raises(ValueError, match="unknown deployment strategy"):
            run_attack_matrix(medium_env, strategies=["nope"], levels=(0.0,))

    def test_rows_align_with_cells(self, cells):
        rows = matrix_to_rows(cells)
        assert len(rows) == len(cells)
        assert all(len(r) == 8 for r in rows)


class TestCellSerialisation:
    def test_round_trip(self, cells):
        for cell in cells:
            assert cell_from_dict(cell_to_dict(cell)) == cell

    def test_unknown_keys_ignored(self, cells):
        payload = cell_to_dict(cells[0])
        payload["future_field"] = 123
        assert cell_from_dict(payload) == cells[0]


class TestJournal:
    KW = dict(
        scenarios=["origin_hijack", "subprefix_hijack"],
        policies=["security_3rd"],
        strategies=["top_isp_first"],
        levels=(0.0, 1.0),
        samples=3,
    )

    def test_resume_replays_identically(self, medium_env, tmp_path):
        journal = RunJournal(tmp_path / "matrix.jsonl")
        first = run_attack_matrix(medium_env, journal=journal, **self.KW)
        sources: list[str] = []
        second = run_attack_matrix(
            medium_env, journal=journal,
            on_cell=lambda cell, source: sources.append(source), **self.KW,
        )
        assert second == first
        assert sources == ["replayed"] * len(first)

    def test_partial_journal_computes_only_the_rest(self, medium_env, tmp_path):
        journal = RunJournal(tmp_path / "matrix.jsonl")
        full = run_attack_matrix(medium_env, journal=journal, **self.KW)
        # drop the last cell record and resume: exactly one recompute
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("\n".join(lines[:-1]) + "\n")
        sources: list[str] = []
        again = run_attack_matrix(
            medium_env, journal=RunJournal(journal.path),
            on_cell=lambda cell, source: sources.append(source), **self.KW,
        )
        assert again == full
        assert sources.count("computed") == 1
        assert sources.count("replayed") == len(full) - 1

    def test_scenario_mismatch_names_both_sets(self, medium_env, tmp_path):
        journal = RunJournal(tmp_path / "matrix.jsonl")
        run_attack_matrix(medium_env, journal=journal, **self.KW)
        kw = dict(self.KW, scenarios=["route_leak"])
        with pytest.raises(SchemaError) as excinfo:
            run_attack_matrix(medium_env, journal=journal, **kw)
        message = str(excinfo.value)
        assert "origin_hijack" in message and "route_leak" in message

    def test_other_meta_mismatch_still_guarded(self, medium_env, tmp_path):
        journal = RunJournal(tmp_path / "matrix.jsonl")
        run_attack_matrix(medium_env, journal=journal, **self.KW)
        kw = dict(self.KW, samples=5)
        with pytest.raises(JournalMismatchError):
            run_attack_matrix(medium_env, journal=journal, **kw)


class TestTelemetry:
    def test_counters_and_spans(self, medium_env):
        from repro.telemetry.metrics import MetricsRegistry, use_registry
        from repro.telemetry.spans import Tracer, use_tracer

        registry, tracer = MetricsRegistry(), Tracer()
        with use_registry(registry), use_tracer(tracer):
            run_attack_matrix(
                medium_env,
                scenarios=["origin_hijack"], policies=["security_3rd"],
                strategies=["top_isp_first"], levels=(0.0,), samples=2,
            )
        snapshot = registry.snapshot()
        spans = [e.name for e in tracer.events()]
        assert snapshot["counters"]["security.attack.cells"] == 1
        assert snapshot["counters"]["security.attack.batches"] >= 1
        assert "attack.matrix" in spans and "attack.cell" in spans
