"""Figure 5: median utility and projected utility of next-round
adopters, normalised by starting utility (§5.5).

Paper: early rounds' adopters project >= 105% of start (stealing);
later adopters have dropped below start and deploy to recover (their
projections approach 100%).  Shape: projected >= actual-at-decision,
and the recover-not-steal transition as rounds progress.
"""

from __future__ import annotations

import math

from benchmarks.conftest import case_study_report
from repro.experiments.report import format_series


def test_fig05_median_projections(benchmark, env, capsys):
    report = benchmark.pedantic(
        lambda: case_study_report(env), rounds=1, iterations=1
    )
    med_u = report.fig5_median_utility
    med_p = report.fig5_median_projected
    with capsys.disabled():
        print()
        print("Fig 5: per-round medians over next-round adopters")
        print("  " + format_series("median utility  ", med_u, "{:.3f}"))
        print("  " + format_series("median projected", med_p, "{:.3f}"))
    pairs = [
        (u, p) for u, p in zip(med_u, med_p)
        if not (math.isnan(u) or math.isnan(p))
    ]
    assert pairs
    # adopters project strictly above their current utility (rule 3)
    assert all(p > u for u, p in pairs)
