"""Tests for deployment state and simplex-stub derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.state import DeploymentState, StateDeriver
from repro.topology.graph import ASGraph


@pytest.fixture()
def star_graph() -> ASGraph:
    """ISPs 1 and 2 share multihomed stub 10; 1 also owns stub 11."""
    g = ASGraph(cp_asns=[5])
    for asn in (1, 2, 5, 10, 11):
        g.add_as(asn)
    g.add_customer_provider(provider=1, customer=10)
    g.add_customer_provider(provider=2, customer=10)
    g.add_customer_provider(provider=1, customer=11)
    g.add_customer_provider(provider=1, customer=5)
    return g


class TestDeploymentState:
    def test_initial_state(self):
        s = DeploymentState.initial([3, 4])
        assert s.deployers == {3, 4}
        assert s.early_adopters == {3, 4}

    def test_with_flips(self):
        s = DeploymentState.initial([1])
        s2 = s.with_flips(turn_on=[2, 3])
        assert s2.deployers == {1, 2, 3}
        s3 = s2.with_flips(turn_off=[2])
        assert s3.deployers == {1, 3}

    def test_early_adopters_pinned(self):
        s = DeploymentState.initial([1]).with_flips(turn_off=[1])
        assert 1 in s.deployers

    def test_immutability(self):
        s = DeploymentState.initial([1])
        s.with_flips(turn_on=[9])
        assert s.deployers == {1}

    def test_is_deployer(self):
        s = DeploymentState.initial([1])
        assert s.is_deployer(1)
        assert not s.is_deployer(2)


class TestStateDeriver:
    def test_stub_secured_by_any_provider(self, star_graph):
        d = StateDeriver(star_graph)
        state = DeploymentState.initial([star_graph.index(2)])
        secure = d.node_secure(state)
        assert secure[star_graph.index(10)]       # multihomed: 2 secures it
        assert not secure[star_graph.index(11)]   # 1 is insecure

    def test_cp_not_secured_by_provider(self, star_graph):
        """Simplex upgrades apply to stubs only; CPs need to be adopters."""
        d = StateDeriver(star_graph)
        state = DeploymentState.initial([star_graph.index(1)])
        secure = d.node_secure(state)
        assert not secure[star_graph.index(5)]

    def test_early_adopter_stub_secure_alone(self, star_graph):
        d = StateDeriver(star_graph)
        state = DeploymentState.initial([star_graph.index(11)])
        assert d.node_secure(state)[star_graph.index(11)]

    def test_empty_state_all_insecure(self, star_graph):
        d = StateDeriver(star_graph)
        state = DeploymentState(frozenset(), frozenset())
        assert not d.node_secure(state).any()

    def test_breaks_ties_stub_policy(self, star_graph):
        state = DeploymentState.initial([star_graph.index(1)])
        with_stub = StateDeriver(star_graph, stub_breaks_ties=True)
        without = StateDeriver(star_graph, stub_breaks_ties=False)
        sec = with_stub.node_secure(state)
        assert with_stub.breaks_ties(sec)[star_graph.index(10)]
        assert not without.breaks_ties(without.node_secure(state))[star_graph.index(10)]
        # ISPs always break ties when secure
        assert without.breaks_ties(sec)[star_graph.index(1)]

    def test_newly_secured_stubs(self, star_graph):
        d = StateDeriver(star_graph)
        state = DeploymentState.initial([star_graph.index(2)])
        new = d.newly_secured_stubs(state, star_graph.index(1))
        assert new == [star_graph.index(11)]  # 10 already secure via 2

    def test_orphaned_stubs(self, star_graph):
        d = StateDeriver(star_graph)
        i1, i2 = star_graph.index(1), star_graph.index(2)
        state = DeploymentState(frozenset({i1, i2}), frozenset())
        # turning 1 off orphans 11 but not the multihomed 10
        assert d.orphaned_stubs(state, i1) == [star_graph.index(11)]
        assert d.orphaned_stubs(state, i2) == []

    def test_orphaned_stubs_for_non_deployer(self, star_graph):
        d = StateDeriver(star_graph)
        state = DeploymentState(frozenset(), frozenset())
        assert d.orphaned_stubs(state, star_graph.index(1)) == []
