"""Tests for security/deployment metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adopters import cps_plus_top_isps
from repro.core.config import SimulationConfig, UtilityModel
from repro.core.dynamics import run_deployment
from repro.core.engine import compute_round_data
from repro.core.metrics import (
    deployment_outcome,
    projection_accuracy,
    security_snapshot,
    zero_sum_analysis,
)
from repro.core.state import DeploymentState, StateDeriver


@pytest.fixture(scope="module")
def finished(small_graph, small_cache):
    adopters = cps_plus_top_isps(small_graph, 3)
    return run_deployment(
        small_graph, adopters, SimulationConfig(theta=0.05), small_cache
    )


class TestSecuritySnapshot:
    def test_empty_state_all_zero(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(
            small_cache, deriver, DeploymentState(frozenset(), frozenset()),
            UtilityModel.OUTGOING,
        )
        snap = security_snapshot(small_graph, rd)
        assert snap.fraction_secure_ases == 0.0
        assert snap.fraction_secure_paths == 0.0
        assert snap.f_squared == 0.0

    def test_everything_secure(self, small_graph, small_cache):
        deriver = StateDeriver(small_graph)
        all_nodes = frozenset(range(small_graph.n))
        rd = compute_round_data(
            small_cache, deriver, DeploymentState(all_nodes, frozenset()),
            UtilityModel.OUTGOING,
        )
        snap = security_snapshot(small_graph, rd)
        assert snap.fraction_secure_ases == 1.0
        # every reachable pair is secure; only unreachable pairs miss
        assert snap.fraction_secure_paths > 0.95

    def test_paths_track_f_squared(self, small_graph, small_cache, finished):
        deriver = StateDeriver(small_graph)
        rd = compute_round_data(
            small_cache, deriver, finished.final_state, UtilityModel.OUTGOING
        )
        snap = security_snapshot(small_graph, rd)
        # Fig. 9: secure-path fraction sits just below f^2
        assert snap.fraction_secure_paths <= snap.f_squared + 1e-9
        assert snap.fraction_secure_paths >= 0.5 * snap.f_squared


class TestDeploymentOutcome:
    def test_fractions_consistent(self, finished):
        out = deployment_outcome(finished)
        assert 0 <= out.fraction_isps_by_market <= out.fraction_secure_isps <= 1
        assert out.num_rounds == finished.num_rounds
        assert out.outcome == "stable"

    def test_most_ases_secure_at_low_theta(self, finished):
        out = deployment_outcome(finished)
        assert out.fraction_secure_ases > 0.5  # paper: 85% at theta=5%


class TestZeroSum:
    def test_holdouts_lose(self, finished):
        zs = zero_sum_analysis(finished)
        # §5.6: ISPs that stay insecure end below their starting utility
        assert zs.mean_final_over_start_insecure < 1.0
        assert zs.mean_final_over_start_secure > zs.mean_final_over_start_insecure

    def test_fraction_bounded(self, finished):
        zs = zero_sum_analysis(finished)
        assert 0.0 <= zs.fraction_isps_above_threshold <= 1.0


class TestProjectionAccuracy:
    def test_ratios_near_one(self, finished):
        ratios = projection_accuracy(finished)
        assert ratios, "no adopters recorded"
        # §8.1: projections are excellent estimates (within a few %)
        assert np.median(ratios) == pytest.approx(1.0, abs=0.15)

    def test_ratio_definition(self, finished):
        record = next(r for r in finished.rounds if r.turned_on)
        isp = record.turned_on[0]
        nxt = (
            finished.rounds[record.index].utilities
            if record.index < len(finished.rounds)
            else finished.final_utilities
        )
        expected = record.projections[isp].utility / float(nxt[isp])
        assert expected in [pytest.approx(r) for r in projection_accuracy(finished)]
