"""Golden fixture for RPR007 (broad except without re-raise/telemetry)."""


def bad_swallow(work) -> int:
    try:
        return work()
    except Exception:  # expect: RPR007
        return 0


def bad_bare(work) -> int:
    try:
        return work()
    except:  # expect: RPR007
        return 0


def bad_tuple_hiding_broad(work) -> int:
    try:
        return work()
    except (ValueError, Exception):  # expect: RPR007
        return 0


def waived_swallow(work) -> int:
    try:
        return work()
    except Exception:  # repro-lint: disable=RPR007 -- fixture waiver
        return 0


def clean_reraise(work) -> int:
    try:
        return work()
    except Exception:
        raise


def clean_forwarded(work, log) -> int:
    try:
        return work()
    except Exception as exc:
        log.warning("work failed: %s", exc)
        return 0


def clean_narrow(work) -> int:
    try:
        return work()
    except (ValueError, KeyError):
        return 0
