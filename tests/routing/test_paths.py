"""Tests for path reconstruction helpers."""

from __future__ import annotations

import numpy as np

from repro.routing.fast_tree import compute_tree
from repro.routing.paths import as_path, path_is_secure, transit_nodes
from repro.routing.tree import compute_dest_routing
from repro.topology.graph import ASGraph


def make_chain() -> ASGraph:
    g = ASGraph()
    for asn in (10, 20, 30):
        g.add_as(asn)
    g.add_customer_provider(provider=10, customer=20)
    g.add_customer_provider(provider=20, customer=30)
    return g


def test_as_path_returns_asns():
    g = make_chain()
    dr = compute_dest_routing(g, g.index(30))
    none = np.zeros(g.n, dtype=bool)
    tree = compute_tree(dr, none, none)
    assert as_path(g, tree, 10) == [10, 20, 30]


def test_as_path_unreachable():
    g = make_chain()
    g.add_as(99)
    dr = compute_dest_routing(g, g.index(30))
    none = np.zeros(g.n, dtype=bool)
    tree = compute_tree(dr, none, none)
    assert as_path(g, tree, 99) == []


def test_transit_nodes_strictly_between():
    g = make_chain()
    dr = compute_dest_routing(g, g.index(30))
    none = np.zeros(g.n, dtype=bool)
    tree = compute_tree(dr, none, none)
    assert transit_nodes(tree, g.index(10), g.index(30)) == [g.index(20)]
    assert transit_nodes(tree, g.index(20), g.index(30)) == []


def test_path_is_secure_flag():
    g = make_chain()
    dr = compute_dest_routing(g, g.index(30))
    all_secure = np.ones(g.n, dtype=bool)
    tree = compute_tree(dr, all_secure, all_secure)
    assert path_is_secure(tree, g.index(10))
    none = np.zeros(g.n, dtype=bool)
    tree2 = compute_tree(dr, none, none)
    assert not path_is_secure(tree2, g.index(10))
