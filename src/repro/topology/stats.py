"""Topology statistics used throughout the evaluation (Tables 2-4, §5.3).

These helpers regenerate the paper's structural sanity checks: graph
size by edge type (Table 2), CP mean path lengths (Table 3), Tier-1 vs
CP degrees (Table 4), degree distributions and the stub/ISP breakdown
that drives the simplex-S*BGP argument (§2.2.1).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np

from repro.topology.graph import ASGraph
from repro.topology.relationships import ASRole


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """Aggregate topology statistics in the shape of the paper's Table 2."""

    num_ases: int
    num_stubs: int
    num_isps: int
    num_cps: int
    num_customer_provider_edges: int
    num_peering_edges: int

    @property
    def stub_fraction(self) -> float:
        """Fraction of ASes that are stubs (paper: ~85%)."""
        return self.num_stubs / self.num_ases if self.num_ases else 0.0


def summarize(graph: ASGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    roles = graph.roles
    counts = Counter(int(r) for r in roles)
    return GraphSummary(
        num_ases=graph.n,
        num_stubs=counts.get(int(ASRole.STUB), 0),
        num_isps=counts.get(int(ASRole.ISP), 0),
        num_cps=counts.get(int(ASRole.CP), 0),
        num_customer_provider_edges=graph.num_customer_provider_edges(),
        num_peering_edges=graph.num_peering_edges(),
    )


def degree_array(graph: ASGraph) -> np.ndarray:
    """Total degree of every AS, by dense index."""
    return np.array([graph.degree_of_index(i) for i in range(graph.n)], dtype=np.int64)


def top_by_degree(graph: ASGraph, k: int, role: ASRole | None = ASRole.ISP) -> list[int]:
    """AS numbers of the ``k`` highest-degree ASes (optionally by role).

    Ties are broken by AS number for determinism.  This is the paper's
    heuristic for choosing Tier-1 early adopters ("top five Tier 1 ASes
    in terms of degree", §5).
    """
    degrees = degree_array(graph)
    candidates = range(graph.n) if role is None else graph.indices_with_role(role)
    ranked = sorted(candidates, key=lambda i: (-int(degrees[i]), graph.asn(i)))
    return [graph.asn(i) for i in ranked[:k]]


def stub_customer_counts(graph: ASGraph) -> dict[int, int]:
    """Per-ISP count of *stub* customers.

    §2.2.1 argues simplex S*BGP is safe because 80% of ISPs have < 7
    stub customers; this is the statistic behind that claim.
    """
    roles = graph.roles
    out: dict[int, int] = {}
    for i in graph.isp_indices:
        out[graph.asn(i)] = sum(1 for c in graph.customers[i] if roles[c] == ASRole.STUB)
    return out


def degree_distribution(graph: ASGraph) -> dict[int, int]:
    """Histogram {degree: number of ASes with that degree}."""
    return dict(Counter(graph.degree_of_index(i) for i in range(graph.n)))


def multihomed_stub_fraction(graph: ASGraph) -> float:
    """Fraction of stubs with more than one provider.

    Multihomed stubs are where provider competition (DIAMONDs, Fig. 2)
    happens, so this is a key structural statistic for the model.
    """
    stubs = graph.stub_indices
    if not stubs:
        return 0.0
    multi = sum(1 for i in stubs if len(graph.providers[i]) > 1)
    return multi / len(stubs)
