"""The dark side of tying security to route selection (Section 7).

Two phenomena under the *incoming* utility model:

1. buyer's remorse (Figure 13): a reconstruction of the paper's AS-4755
   example, an ISP whose incoming revenue *rises* when it disables
   S*BGP because a content provider's traffic falls back onto one of
   its customer links;
2. oscillation (Appendix F / Theorem 7.1): the CHICKEN construction,
   two ISPs that endlessly cycle S*BGP on and off under simultaneous
   myopic best response.

Usage::

    python examples/buyers_remorse_and_oscillation.py
"""

from __future__ import annotations

from repro.core import (
    DeploymentSimulation,
    DeploymentState,
    SimulationConfig,
    StateDeriver,
    UtilityModel,
    compute_round_data,
    project_flip,
)
from repro.gadgets.buyers_remorse import build_buyers_remorse
from repro.gadgets.oscillator import build_chicken
from repro.routing.cache import RoutingCache


def remorse_demo() -> None:
    print("=" * 64)
    print("1. Buyer's remorse (Fig. 13): AS 4755 wants S*BGP OFF")
    net = build_buyers_remorse(num_stubs=24, cp_weight=821.0)
    g = net.graph
    cache = RoutingCache(g)
    deriver = StateDeriver(g, stub_breaks_ties=False, compiled=cache.compiled)

    ea = frozenset([g.index(net.cp), g.index(net.upstream)])
    state = DeploymentState.initial(ea).with_flips(turn_on=[g.index(net.focal)])
    rd = compute_round_data(cache, deriver, state, UtilityModel.INCOMING)
    focal = g.index(net.focal)
    proj = project_flip(cache, deriver, rd, focal, turning_on=False,
                        model=UtilityModel.INCOMING)

    print(f"  AS {net.focal} incoming utility with S*BGP ON : {rd.utilities[focal]:9.0f}")
    print(f"  AS {net.focal} incoming utility if turned OFF : {proj.utility:9.0f}")
    print(f"  -> Akamai's traffic to {len(net.stubs)} stubs re-enters via the")
    print(f"     customer link through AS {net.fallback}, so turning OFF pays.")


def oscillation_demo() -> None:
    print("=" * 64)
    print("2. Oscillation (App. F): the chicken gadget never settles")
    net = build_chicken()
    cfg = SimulationConfig(theta=0.0, utility_model=UtilityModel.INCOMING,
                           max_rounds=12)
    sim = DeploymentSimulation(net.graph, net.fixed_on, cfg,
                               player_asns=list(net.players))
    result = sim.run()
    g = net.graph
    for record in result.rounds:
        on = sorted(g.asn(i) for i in record.turned_on)
        off = sorted(g.asn(i) for i in record.turned_off)
        print(f"  round {record.index}: turn ON {on or '-'}  turn OFF {off or '-'}")
    print(f"  outcome: {result.outcome.value} — and Theorem 7.1 says even "
          "*deciding* whether this happens is PSPACE-complete.")


if __name__ == "__main__":
    remorse_demo()
    oscillation_demo()
