"""Nested timed spans with Chrome-trace / Perfetto export.

A :class:`Tracer` hands out ``span("round", index=3)`` context
managers; each records a complete event (name, start, duration, args)
when its block exits.  Spans nest naturally — Perfetto and
``chrome://tracing`` stack complete events that overlap in time on the
same process/thread track, so a ``sweep`` span encloses its ``cell``
spans which enclose their ``round`` spans with no parent bookkeeping
on our side.

Export targets:

- :meth:`Tracer.to_chrome_trace` / :meth:`Tracer.write_chrome_trace` —
  the Chrome Trace Event JSON object format (``{"traceEvents": [...]}``
  with ``ph: "X"`` complete events, microsecond timestamps), loadable
  in https://ui.perfetto.dev or ``chrome://tracing``;
- :meth:`Tracer.write_jsonl` — one span per line for streaming
  consumers and ``grep``-ability.

Both writers go through :mod:`repro.runtime.atomic`, so a crash
mid-export never leaves a torn trace shadowing an older good one.

As with metrics, the default tracer (:data:`NULL_TRACER`) is a no-op
whose ``span()`` returns a shared null context manager.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
import time
from pathlib import Path
from typing import Iterator

from repro.runtime.atomic import atomic_write_text

__all__ = [
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclasses.dataclass(frozen=True)
class SpanEvent:
    """One completed span: microseconds relative to the tracer epoch."""

    name: str
    start_us: float
    duration_us: float
    pid: int
    tid: int
    args: dict

    def to_chrome(self) -> dict:
        """Chrome Trace Event Format "complete" (``ph: "X"``) event."""
        event = {
            "name": self.name,
            "ph": "X",
            "ts": self.start_us,
            "dur": self.duration_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class _Span:
    """Context manager recording one timed span on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        self._tracer._record(self._name, self._start, end, self._args)


class Tracer:
    """Collects spans in memory; export when the run is over.

    The epoch is the tracer's creation instant: timestamps are relative,
    which keeps traces comparable across runs and avoids wall-clock
    skew inside one.
    """

    enabled = True

    def __init__(self):
        self._epoch = time.perf_counter()
        self._events: list[SpanEvent] = []
        self._lock = threading.Lock()

    def span(self, name: str, **args) -> _Span:
        """A context manager that records ``name`` with ``args`` on exit."""
        return _Span(self, name, args)

    def _record(self, name: str, start: float, end: float, args: dict) -> None:
        event = SpanEvent(
            name=name,
            start_us=(start - self._epoch) * 1e6,
            duration_us=(end - start) * 1e6,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFF,
            args=args,
        )
        with self._lock:
            self._events.append(event)

    def events(self) -> list[SpanEvent]:
        """Recorded spans, in completion order."""
        with self._lock:
            return list(self._events)

    def add_events(self, events: list[SpanEvent]) -> None:
        """Adopt spans recorded elsewhere (e.g. shipped from a worker)."""
        with self._lock:
            self._events.extend(events)

    # -- export -------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The Chrome Trace Event JSON object for all recorded spans."""
        return {
            "traceEvents": [e.to_chrome() for e in self.events()],
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str | Path) -> None:
        """Atomically write a Perfetto/``chrome://tracing`` loadable file."""
        atomic_write_text(path, json.dumps(self.to_chrome_trace(), indent=1))

    def write_jsonl(self, path: str | Path) -> None:
        """Atomically write one JSON span object per line."""
        lines = [json.dumps(e.to_chrome(), sort_keys=True) for e in self.events()]
        atomic_write_text(path, "\n".join(lines) + "\n" if lines else "")


class NullTracer(Tracer):
    """The default tracer: ``span()`` is a shared no-op context manager."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, **args):  # type: ignore[override]
        return _NULL_SPAN

    def _record(self, name: str, start: float, end: float, args: dict) -> None:
        pass


_NULL_SPAN = contextlib.nullcontext()

NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide active tracer (no-op unless one was installed)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the no-op); returns the previous."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer` for tests and embedded callers."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
