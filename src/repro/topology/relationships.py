"""Business relationships and AS roles for the AS-level topology.

The paper annotates the AS graph with the standard Gao-Rexford business
relationships (Section 3.1, Figure 1): *customer-provider* edges, where
the customer pays the provider for transit, and *peer-to-peer* edges,
where two ASes exchange traffic settlement-free.

ASes are partitioned into three roles (Section 3.1):

- ``STUB`` -- no customers and not a content provider; ~85% of the
  Internet.  Stubs only ever originate traffic for their own prefixes.
- ``CP`` -- one of the five content providers that together originate an
  ``x`` fraction of all Internet traffic.
- ``ISP`` -- everything else; ISPs are the only players in the
  deployment game.
"""

from __future__ import annotations

import enum


class Relationship(enum.IntEnum):
    """Business relationship of an edge, from the perspective of one end.

    ``CUSTOMER`` means "the neighbor is my customer", ``PROVIDER`` means
    "the neighbor is my provider", ``PEER`` means a settlement-free peer.
    """

    CUSTOMER = 1
    PEER = 0
    PROVIDER = -1

    def flipped(self) -> "Relationship":
        """Return the same edge as seen from the other endpoint."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class ASRole(enum.IntEnum):
    """Role of an AS in the deployment game (Section 3.1)."""

    STUB = 0
    ISP = 1
    CP = 2


#: CAIDA ``as-rel`` file encoding: ``<a>|<b>|-1`` means *a is b's
#: provider* (equivalently b is a's customer); ``<a>|<b>|0`` is peering.
CAIDA_PROVIDER_TO_CUSTOMER = -1
CAIDA_PEER_TO_PEER = 0
