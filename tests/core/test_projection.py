"""Projection engines must equal brute-force flipped-state utilities."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ProjectionEngine, UtilityModel
from repro.core.engine import compute_round_data
from repro.core.projection import per_destination_turn_off_gains, project_flip
from repro.core.state import DeploymentState, StateDeriver
from repro.routing.cache import RoutingCache
from repro.topology.generator import generate_topology
from repro.topology.traffic import apply_traffic_model


def brute_force_utility(cache, deriver, state, isp, turning_on, model) -> float:
    flipped = (
        state.with_flips(turn_on=[isp])
        if turning_on
        else state.with_flips(turn_off=[isp])
    )
    rd = compute_round_data(cache, deriver, flipped, model)
    return float(rd.utilities[isp])


@pytest.fixture(scope="module")
def setup():
    top = generate_topology(n=160, seed=21)
    g = top.graph
    apply_traffic_model(g, 0.10)
    cache = RoutingCache(g)
    cache.warm()
    return g, cache


@pytest.mark.parametrize("model", [UtilityModel.OUTGOING, UtilityModel.INCOMING])
@pytest.mark.parametrize("stub_breaks", [True, False])
def test_projection_equals_ground_truth(setup, model, stub_breaks):
    g, cache = setup
    deriver = StateDeriver(g, stub_breaks_ties=stub_breaks, compiled=cache.compiled)
    rng = random.Random(5)
    isps = g.isp_indices
    ea = frozenset(rng.sample(isps, 3))
    extra = [i for i in rng.sample(isps, 12) if i not in ea][:6]
    state = DeploymentState.initial(ea).with_flips(turn_on=extra)
    rd = compute_round_data(cache, deriver, state, model)

    on_candidates = [i for i in isps if i not in state.deployers][:10]
    off_candidates = extra
    for isp, on in [(i, True) for i in on_candidates] + [(i, False) for i in off_candidates]:
        truth = brute_force_utility(cache, deriver, state, isp, on, model)
        for engine in (ProjectionEngine.INCREMENTAL, ProjectionEngine.FULL):
            proj = project_flip(cache, deriver, rd, isp, on, model, engine)
            assert proj.utility == pytest.approx(truth, abs=1e-6), (
                isp, on, model, engine
            )


def test_projection_reports_flips(setup):
    g, cache = setup
    deriver = StateDeriver(g, compiled=cache.compiled)
    state = DeploymentState(frozenset(), frozenset())
    rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
    isp = g.isp_indices[0]
    proj = project_flip(cache, deriver, rd, isp, True, UtilityModel.OUTGOING)
    assert proj.flips[isp] is True
    stubs = deriver.stubs_of(isp)
    for s in stubs:
        assert proj.flips.get(int(s)) is True


def test_turn_on_never_hurts_outgoing(setup):
    """Theorem H.1's flip side: deploying cannot lose outgoing traffic."""
    g, cache = setup
    deriver = StateDeriver(g, compiled=cache.compiled)
    rng = random.Random(11)
    state = DeploymentState.initial(frozenset(rng.sample(g.isp_indices, 5)))
    rd = compute_round_data(cache, deriver, state, UtilityModel.OUTGOING)
    for isp in [i for i in g.isp_indices if i not in state.deployers][:20]:
        proj = project_flip(cache, deriver, rd, isp, True, UtilityModel.OUTGOING)
        assert proj.utility >= float(rd.utilities[isp]) - 1e-9


def test_per_destination_turn_off_gains(setup):
    g, cache = setup
    deriver = StateDeriver(g, stub_breaks_ties=False, compiled=cache.compiled)
    rng = random.Random(3)
    deployers = frozenset(rng.sample(g.isp_indices, 8))
    state = DeploymentState(deployers, frozenset())
    rd = compute_round_data(cache, deriver, state, UtilityModel.INCOMING)
    for isp in list(deployers)[:5]:
        gains = per_destination_turn_off_gains(cache, deriver, rd, isp)
        for dest, gain in gains.items():
            assert gain > 0
            assert dest != isp
