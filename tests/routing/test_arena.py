"""Differential tests for the pooled routing arena + batched kernel.

The batched kernel must be *bit-identical* to the per-destination
kernels (and hence to the scalar reference) on every destination, state
and tie-break policy — these tests stack the three implementations
against each other on random graphs x random deployment states,
including the simplex-stub case (secure but not tie-breaking) and
partial ``breaks_ties`` masks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.arena import (
    RoutingArena,
    compute_trees_batched,
    subtree_weights_batched,
)
from repro.routing.fast_tree import (
    RoutingTree,
    compute_tree,
    compute_tree_scalar,
    subtree_weights,
)
from repro.routing.tree import DestRouting, compute_dest_routing, compute_tie_keys
from repro.topology.graph import ASGraph

from tests.strategies import as_graphs


def _flags(n: int, idx: list[int]) -> np.ndarray:
    out = np.zeros(n, dtype=bool)
    out[idx] = True
    return out


def _arena_for(graph: ASGraph, dests: list[int]) -> RoutingArena:
    routings = [compute_dest_routing(graph, d) for d in dests]
    return RoutingArena.build(graph.n, dests, routings)


@st.composite
def graphs_with_states(draw: st.DrawFn):
    """Graph + secure set + breaks-ties subset (simplex stubs included).

    ``breaks`` is drawn as a subset of ``secure`` — exactly the shape
    the simulation produces (insecure ASes never break ties; simplex
    stubs are secure without breaking ties when §6.7 is off).
    """
    graph = draw(as_graphs(min_nodes=4, max_nodes=14))
    secure = draw(
        st.lists(st.integers(0, graph.n - 1), max_size=graph.n, unique=True)
    )
    breaks = [s for s in secure if draw(st.booleans())]
    return graph, secure, breaks


class TestBatchedVsScalar:
    @given(graphs_with_states())
    @settings(max_examples=60, deadline=None)
    def test_every_destination_bit_identical(self, case):
        graph, secure_list, breaks_list = case
        secure = _flags(graph.n, secure_list)
        breaks = _flags(graph.n, breaks_list)
        dests = list(range(graph.n))
        arena = _arena_for(graph, dests)
        bt = compute_trees_batched(arena, arena.all_slots(), secure, breaks)
        for k, dest in enumerate(dests):
            dr = compute_dest_routing(graph, dest)
            ref = compute_tree_scalar(dr, secure, breaks)
            got = bt.tree(k)
            assert got.dest == dest
            assert (got.choice == ref.choice).all()
            assert (got.secure == ref.secure).all()
            assert (got.any_secure_candidate == ref.any_secure_candidate).all()

    @given(graphs_with_states())
    @settings(max_examples=40, deadline=None)
    def test_subtree_weights_match(self, case):
        graph, secure_list, breaks_list = case
        rng = np.random.default_rng(graph.n)
        weights = rng.uniform(0.5, 5.0, size=graph.n)
        secure = _flags(graph.n, secure_list)
        breaks = _flags(graph.n, breaks_list)
        dests = list(range(graph.n))
        arena = _arena_for(graph, dests)
        bt = compute_trees_batched(arena, arena.all_slots(), secure, breaks)
        w2d = subtree_weights_batched(arena, arena.all_slots(), bt.choice, weights)
        for k, dest in enumerate(dests):
            dr = arena.view(k)
            ref = subtree_weights(dr, bt.tree(k), weights)
            np.testing.assert_array_equal(w2d[k], ref)

    def test_simplex_stub_does_not_apply_secp(self):
        """A secure node with breaks_ties=False keeps its hash choice."""
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(asn)
        g.add_customer_provider(provider=1, customer=2)
        g.add_customer_provider(provider=1, customer=3)
        g.add_customer_provider(provider=2, customer=4)
        g.add_customer_provider(provider=3, customer=4)
        dest = g.index(4)
        arena = _arena_for(g, [dest])
        none = np.zeros(g.n, dtype=bool)
        plain = compute_trees_batched(arena, arena.all_slots(), none, none)
        hash_choice = int(plain.choice[0, g.index(1)])
        other = g.index(2) if hash_choice == g.index(3) else g.index(3)
        secure = _flags(g.n, [g.index(1), other, dest])
        # node 1 secure, secure candidate available, but no SecP
        simplex = compute_trees_batched(arena, arena.all_slots(), secure, none)
        assert int(simplex.choice[0, g.index(1)]) == hash_choice
        # ...and with SecP it reroutes to the secure middle
        secp = compute_trees_batched(arena, arena.all_slots(), secure, secure)
        assert int(secp.choice[0, g.index(1)]) == other


class TestSubsetBatches:
    def test_subset_matches_full_and_per_dest(self, small_graph, small_cache):
        arena = small_cache.ensure_arena()
        rng = np.random.default_rng(42)
        secure = rng.random(small_graph.n) < 0.4
        breaks = secure & (rng.random(small_graph.n) < 0.7)
        slots = np.asarray(
            sorted(rng.choice(arena.num_dests, size=17, replace=False)), dtype=np.int64
        )
        bt = compute_trees_batched(arena, slots, secure, breaks)
        w2d = subtree_weights_batched(arena, slots, bt.choice, small_graph.weights)
        for i, slot in enumerate(slots):
            dr = arena.view(int(slot))
            ref = compute_tree(dr, secure, breaks)
            assert (bt.choice[i] == ref.choice).all()
            assert (bt.secure[i] == ref.secure).all()
            assert (bt.any_secure[i] == ref.any_secure_candidate).all()
            np.testing.assert_array_equal(
                w2d[i], subtree_weights(dr, ref, small_graph.weights)
            )

    def test_empty_batch(self, small_cache):
        arena = small_cache.ensure_arena()
        n = small_cache.graph.n
        bt = compute_trees_batched(
            arena, np.empty(0, dtype=np.int64),
            np.zeros(n, dtype=bool), np.zeros(n, dtype=bool),
        )
        assert bt.choice.shape == (0, n)


class TestArenaStructure:
    def test_views_equal_originals(self, small_graph):
        dests = list(range(0, small_graph.n, 7))
        routings = [compute_dest_routing(small_graph, d) for d in dests]
        arena = RoutingArena.build(small_graph.n, dests, routings)
        for k, r in enumerate(routings):
            v = arena.view(k)
            assert v.dest == r.dest
            for field in ("cls", "lengths", "order", "row_of", "level_starts",
                          "indptr", "cands"):
                np.testing.assert_array_equal(getattr(v, field), getattr(r, field))
            np.testing.assert_array_equal(v.tie_keys(), r.tie_keys())

    def test_views_share_pool_memory(self, small_cache):
        arena = small_cache.ensure_arena()
        v = arena.view(0)
        assert v.order.base is not None  # a slice of the pool, not a copy
        assert np.shares_memory(v.cls, arena.cls)

    def test_buffer_round_trip(self, small_graph):
        dests = list(range(0, small_graph.n, 11))
        arena = _arena_for(small_graph, dests)
        total, layout = arena.to_blocks()
        buf = bytearray(total)
        packed_layout = arena.pack_into(buf)
        assert packed_layout == layout
        assert all(offset % 16 == 0 for _, _, _, offset in layout)
        clone = RoutingArena.from_buffer(small_graph.n, buf, layout, copy=True)
        for name in ("dest_ids", "cls", "order_pool", "indptr_pool",
                     "cands_pool", "keys_pool"):
            np.testing.assert_array_equal(getattr(clone, name), getattr(arena, name))
        rng = np.random.default_rng(7)
        secure = rng.random(small_graph.n) < 0.3
        a = compute_trees_batched(arena, arena.all_slots(), secure, secure)
        b = compute_trees_batched(clone, clone.all_slots(), secure, secure)
        np.testing.assert_array_equal(a.choice, b.choice)
        np.testing.assert_array_equal(a.secure, b.secure)

    def test_build_rejects_misaligned_inputs(self, small_graph):
        with pytest.raises(ValueError):
            RoutingArena.build(small_graph.n, [0, 1], [])

    def test_tie_keys_precomputed_once(self, small_graph):
        dr = compute_dest_routing(small_graph, 3)
        keys = dr.tie_keys()
        assert keys is dr.tie_keys()  # cached
        np.testing.assert_array_equal(
            keys, compute_tie_keys(dr.order, dr.indptr, dr.cands)
        )
        assert keys.dtype == np.uint64


def _subtree_weights_add_at(
    dr: DestRouting, tree: RoutingTree, weights: np.ndarray
) -> np.ndarray:
    """The pre-optimisation ``np.add.at`` implementation, kept verbatim
    as the differential reference for the ``np.bincount`` rewrite."""
    n = len(dr.cls)
    w = np.zeros(n, dtype=np.float64)
    order, levels = dr.order, dr.level_starts
    for level in range(len(levels) - 2, 0, -1):
        lo, hi = int(levels[level]), int(levels[level + 1])
        if lo == hi:
            continue
        nodes = order[lo:hi]
        parents = tree.choice[nodes]
        np.add.at(w, parents, w[nodes] + weights[nodes])
    return w


class TestSubtreeWeightsBincount:
    @given(as_graphs(min_nodes=4, max_nodes=16))
    @settings(max_examples=40, deadline=None)
    def test_bincount_matches_add_at(self, graph):
        rng = np.random.default_rng(graph.n)
        weights = rng.uniform(0.1, 9.0, size=graph.n)
        secure = rng.random(graph.n) < 0.5
        for dest in range(0, graph.n, max(1, graph.n // 3)):
            dr = compute_dest_routing(graph, dest)
            tree = compute_tree(dr, secure, secure)
            np.testing.assert_array_equal(
                subtree_weights(dr, tree, weights),
                _subtree_weights_add_at(dr, tree, weights),
            )

    def test_bincount_matches_add_at_on_cache(self, small_graph, small_cache):
        dr = small_cache.dest_routing(5)
        none = np.zeros(small_graph.n, dtype=bool)
        tree = compute_tree(dr, none, none)
        np.testing.assert_array_equal(
            subtree_weights(dr, tree, small_graph.weights),
            _subtree_weights_add_at(dr, tree, small_graph.weights),
        )
