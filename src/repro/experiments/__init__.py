"""Experiment harness: environments, case study, sweeps, reports."""

from repro.experiments.case_study import (
    CaseStudyReport,
    build_report,
    run_case_study,
)
from repro.experiments.cp_vs_tier1 import (
    CpVsTier1Cell,
    run_cp_vs_tier1,
    run_graph_comparison,
)
from repro.experiments.persistence import (
    RESULT_FORMAT,
    load_result_summary,
    result_to_dict,
    save_result,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import (
    format_percent,
    format_series,
    format_table,
    write_report,
)
from repro.experiments.scaling import ScalePoint, run_scaling_study
from repro.experiments.setup import ExperimentEnv, build_environment
from repro.experiments.sweeps import (
    DEFAULT_THETAS,
    SWEEP_JOURNAL_KIND,
    SweepCell,
    cell_from_dict,
    cell_to_dict,
    cells_to_rows,
    run_sweep,
    stub_tiebreak_comparison,
)
from repro.experiments.turnoff import (
    TurnOffCensus,
    per_destination_turn_off_census,
    whole_network_turn_off_census,
)

__all__ = [
    "CaseStudyReport",
    "CpVsTier1Cell",
    "DEFAULT_THETAS",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentEnv",
    "RESULT_FORMAT",
    "SWEEP_JOURNAL_KIND",
    "ScalePoint",
    "SweepCell",
    "TurnOffCensus",
    "build_environment",
    "build_report",
    "cell_from_dict",
    "cell_to_dict",
    "cells_to_rows",
    "format_percent",
    "format_series",
    "format_table",
    "list_experiments",
    "load_result_summary",
    "per_destination_turn_off_census",
    "run_case_study",
    "run_cp_vs_tier1",
    "run_experiment",
    "run_graph_comparison",
    "run_scaling_study",
    "result_to_dict",
    "run_sweep",
    "save_result",
    "stub_tiebreak_comparison",
    "whole_network_turn_off_census",
    "write_report",
]
