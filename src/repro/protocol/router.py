"""Message-level BGP/S*BGP propagation over an AS graph.

This is the protocol-plane companion to the routing substrate: real
:class:`Announcement` objects flow hop by hop, get signed by deploying
ASes, and are validated by receivers.  It exists to demonstrate the
security semantics the deployment model abstracts over — in particular
the Appendix-B attack showing why *partially* secure paths must not be
preferred over insecure ones.

Route selection uses the same policy model as the rest of the library
(LP > SP > SecP > TB with GR2 export); a per-node opt-in
``prefer_partially_secure`` implements the rejected ranking variant the
attack exploits.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.protocol.messages import Announcement
from repro.protocol.rpki import RPKI, Prefix
from repro.protocol.sbgp import forward, originate, validated_signers
from repro.routing.policy import RouteClass, tie_hash
from repro.topology.graph import ASGraph


class SecurityMode(enum.Enum):
    """How much of S*BGP an AS runs."""

    INSECURE = "insecure"
    SIMPLEX = "simplex"  # signs own-prefix originations; never validates
    FULL = "full"        # signs everything and validates received paths


class SecurityLevel(enum.IntEnum):
    """Validation outcome for one announcement at one receiver."""

    FULLY_SECURE = 0
    PARTIALLY_SECURE = 1
    INSECURE = 2


@dataclasses.dataclass(frozen=True)
class RibEntry:
    """A node's selected route for one prefix."""

    announcement: Announcement
    route_class: RouteClass
    level: SecurityLevel

    @property
    def path(self) -> tuple[int, ...]:
        return self.announcement.path


class ProtocolNetwork:
    """A small network of BGP speakers over an :class:`ASGraph`.

    Parameters
    ----------
    graph:
        Topology (AS numbers are used as identities everywhere here).
    rpki:
        Key/ROA registry; every FULL or SIMPLEX AS must be registered.
    modes:
        Per-AS :class:`SecurityMode` (defaults to INSECURE).
    prefer_partially_secure:
        ASes that rank partially-secure paths above insecure ones — the
        dangerous variant Appendix B warns about.  Empty by default.
    drop_invalid_origin:
        FULL validators drop announcements whose origin violates an
        existing ROA (RPKI origin validation).
    leakers:
        ASes that violate GR2 and re-export *everything* to everyone (a
        route leak).  Leaked announcements carry genuine signatures, so
        S*BGP validation accepts them: path validation authenticates
        who sent what, it does not police export policy.
    """

    def __init__(
        self,
        graph: ASGraph,
        rpki: RPKI,
        modes: dict[int, SecurityMode] | None = None,
        prefer_partially_secure: set[int] | None = None,
        drop_invalid_origin: bool = True,
        leakers: set[int] | None = None,
    ):
        self.graph = graph
        self.rpki = rpki
        self.modes = dict(modes or {})
        self.prefer_partial = set(prefer_partially_secure or ())
        self.drop_invalid_origin = drop_invalid_origin
        self.leakers = set(leakers or ())
        self._originations: dict[Prefix, int] = {}
        self._injections: list[tuple[int, Announcement]] = []
        self.ribs: dict[int, dict[Prefix, RibEntry]] = {asn: {} for asn in graph.asns}
        for asn, mode in self.modes.items():
            if mode is not SecurityMode.INSECURE:
                rpki.register_as(asn)

    def mode_of(self, asn: int) -> SecurityMode:
        """Security mode of ``asn`` (INSECURE if unset)."""
        return self.modes.get(asn, SecurityMode.INSECURE)

    def originate_prefix(self, asn: int, prefix: Prefix, issue_roa: bool = True) -> None:
        """``asn`` legitimately originates ``prefix``."""
        if issue_roa:
            self.rpki.issue_roa(prefix, asn)
        self._originations[prefix] = asn

    def inject(self, attacker: int, announcement: Announcement) -> None:
        """``attacker`` emits a (typically forged) announcement to all
        its neighbors, ignoring export policy."""
        self._injections.append((attacker, announcement))

    # ------------------------------------------------------------------
    def converge(self, max_sweeps: int = 1000) -> None:
        """Iterate selection sweeps until the RIBs stop changing."""
        prefixes = set(self._originations) | {a.prefix for _, a in self._injections}
        for _ in range(max_sweeps):
            if not self._sweep(prefixes):
                return
        raise RuntimeError(f"protocol network did not converge in {max_sweeps} sweeps")

    def _sweep(self, prefixes: set[Prefix]) -> bool:
        changed = False
        for asn in self.graph.asns:
            for prefix in prefixes:
                entry = self._select(asn, prefix)
                if self.ribs[asn].get(prefix) != entry:
                    changed = True
                    if entry is None:
                        self.ribs[asn].pop(prefix, None)
                    else:
                        self.ribs[asn][prefix] = entry
        return changed

    def _select(self, asn: int, prefix: Prefix) -> RibEntry | None:
        if self._originations.get(prefix) == asn:
            return None  # the legitimate origin keeps its own prefix local
        offers = list(self._offers_to(asn, prefix))
        if not offers:
            return None
        best = min(
            offers,
            key=lambda entry: (
                -int(entry.route_class),
                len(entry.path) - 1,
                int(entry.level),
                tie_hash(self.graph.index(asn), self.graph.index(entry.path[0])),
            ),
        )
        return best

    def _offers_to(self, asn: int, prefix: Prefix):
        """Candidate routes ``asn`` hears for ``prefix`` this sweep."""
        graph = self.graph
        neighbor_kinds = (
            (RouteClass.CUSTOMER, graph.customers_of(asn)),
            (RouteClass.PEER, graph.peers_of(asn)),
            (RouteClass.PROVIDER, graph.providers_of(asn)),
        )
        for kind, neighbors in neighbor_kinds:
            for nbr in neighbors:
                ann = self._announcement_from(nbr, asn, prefix, kind)
                if ann is None or ann.contains_loop(asn):
                    continue
                level = self._classify(asn, ann)
                if level is None:
                    continue  # dropped by validation
                yield RibEntry(announcement=ann, route_class=kind, level=level)

    def _announcement_from(
        self, nbr: int, receiver: int, prefix: Prefix, kind: RouteClass
    ) -> Announcement | None:
        """What ``nbr`` announces to ``receiver`` for ``prefix``, or None."""
        mode = self.mode_of(nbr)
        # attacker injections reach every neighbor regardless of policy
        for attacker, ann in self._injections:
            if attacker == nbr and ann.prefix == prefix:
                return ann
        if self._originations.get(prefix) == nbr:
            signs = mode in (SecurityMode.FULL, SecurityMode.SIMPLEX)
            if signs:
                return originate(self.rpki, nbr, prefix, receiver)
            return Announcement(prefix=prefix, path=(nbr,))
        entry = self.ribs[nbr].get(prefix)
        if entry is None:
            return None
        # GR2: to a peer or provider, only customer routes are exported —
        # unless the neighbor is misconfigured and leaks everything.
        if kind is not RouteClass.PROVIDER and nbr not in self.leakers:
            if entry.route_class is not RouteClass.CUSTOMER:
                return None
        # SIMPLEX ASes sign only their own prefixes, never transit.
        signs = self.mode_of(nbr) is SecurityMode.FULL
        return forward(self.rpki, nbr, entry.announcement, receiver, sign=signs)

    def _classify(self, receiver: int, ann: Announcement) -> SecurityLevel | None:
        """Validate at ``receiver``; None means drop the announcement."""
        if self.mode_of(receiver) is not SecurityMode.FULL:
            return SecurityLevel.INSECURE
        if (
            self.drop_invalid_origin
            and self.rpki.has_roa(ann.prefix)
            and not self.rpki.origin_valid(ann.prefix, ann.origin)
        ):
            return None
        valid = validated_signers(self.rpki, ann, receiver)
        if valid == set(ann.path):
            return SecurityLevel.FULLY_SECURE
        if valid and receiver in self.prefer_partial:
            return SecurityLevel.PARTIALLY_SECURE
        return SecurityLevel.INSECURE

    # ------------------------------------------------------------------
    def route_of(self, asn: int, prefix: Prefix) -> RibEntry | None:
        """``asn``'s selected route for ``prefix`` after convergence."""
        return self.ribs[asn].get(prefix)

    def path_of(self, asn: int, prefix: Prefix) -> tuple[int, ...] | None:
        """AS path (next hop first) of ``asn``'s selected route."""
        entry = self.route_of(asn, prefix)
        return entry.path if entry else None
