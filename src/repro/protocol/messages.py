"""BGP announcement messages carried by the protocol simulator."""

from __future__ import annotations

import dataclasses

from repro.protocol.rpki import Prefix


@dataclasses.dataclass(frozen=True)
class RouteAttestation:
    """One S-BGP signature: ``signer`` vouches it sent ``path`` toward
    ``next_as`` for ``prefix`` (Section 2.1).

    The signed payload binds the prefix, the path *as seen by the
    signer*, and the neighbor the announcement was addressed to, which
    is what prevents both path truncation and splicing a signed segment
    into another announcement.
    """

    signer: int
    path: tuple[int, ...]
    next_as: int
    signature: bytes

    @staticmethod
    def payload(prefix: Prefix, path: tuple[int, ...], next_as: int) -> bytes:
        parts = [str(prefix), ",".join(map(str, path)), str(next_as)]
        return "|".join(parts).encode()


@dataclasses.dataclass(frozen=True)
class Announcement:
    """A BGP announcement for ``prefix`` with AS path ``path``.

    ``path[0]`` is the most recent sender (the neighbor the receiver
    heard it from); ``path[-1]`` is the origin AS.  ``attestations``
    holds the S-BGP signature chain (possibly partial if some ASes on
    the path do not run S*BGP).
    """

    prefix: Prefix
    path: tuple[int, ...]
    attestations: tuple[RouteAttestation, ...] = ()

    @property
    def origin(self) -> int:
        return self.path[-1]

    @property
    def sender(self) -> int:
        return self.path[0]

    def extended(self, asn: int, attestation: RouteAttestation | None = None) -> "Announcement":
        """The announcement as propagated by ``asn`` one hop further."""
        atts = self.attestations if attestation is None else self.attestations + (attestation,)
        return Announcement(prefix=self.prefix, path=(asn,) + self.path, attestations=atts)

    def contains_loop(self, asn: int) -> bool:
        """BGP loop detection: would ``asn`` appear twice on the path?"""
        return asn in self.path
