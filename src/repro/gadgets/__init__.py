"""Theory gadgets: the paper's constructions, runnable."""

from repro.gadgets.attack_network import AttackNetwork, build_attack_network
from repro.gadgets.buyers_remorse import BuyersRemorseNetwork, build_buyers_remorse
from repro.gadgets.diamond import DiamondNetwork, build_diamond
from repro.gadgets.dilemma import DilemmaNetwork, build_dilemma
from repro.gadgets.fig1 import Fig1Network, build_fig1
from repro.gadgets.hardness import (
    SetCoverInstance,
    SetCoverNetwork,
    build_set_cover_network,
)
from repro.gadgets.oscillator import ChickenNetwork, build_chicken

__all__ = [
    "AttackNetwork",
    "BuyersRemorseNetwork",
    "ChickenNetwork",
    "DiamondNetwork",
    "DilemmaNetwork",
    "Fig1Network",
    "SetCoverInstance",
    "SetCoverNetwork",
    "build_attack_network",
    "build_buyers_remorse",
    "build_chicken",
    "build_diamond",
    "build_dilemma",
    "build_fig1",
    "build_set_cover_network",
]
