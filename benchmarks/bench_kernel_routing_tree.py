"""Kernel benchmarks: the per-destination routing machinery.

Ablation called out in DESIGN.md: the vectorised fast routing-tree
algorithm vs its scalar twin (the paper's own C# kernel ran in ~2 ms
per destination at 36K ASes after optimisation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.arena import compute_trees_batched, subtree_weights_batched
from repro.routing.fast_tree import compute_tree, compute_tree_scalar, subtree_weights
from repro.routing.tree import compute_dest_routing


@pytest.fixture(scope="module")
def secure_state(env):
    node_secure = np.zeros(env.graph.n, dtype=bool)
    node_secure[:: 3] = True
    return node_secure


def test_kernel_dest_routing_precompute(benchmark, env):
    dest = env.graph.index(env.tier1_asns[0])
    dr = benchmark(lambda: compute_dest_routing(env.graph, dest, env.cache.compiled))
    assert dr.num_reachable > 0.9 * env.graph.n


def test_kernel_fast_tree_vectorised(benchmark, env, secure_state):
    dr = env.cache.dest_routing(0)
    tree = benchmark(lambda: compute_tree(dr, secure_state, secure_state))
    assert (tree.choice >= -1).all()


def test_kernel_fast_tree_scalar(benchmark, env, secure_state):
    dr = env.cache.dest_routing(0)
    tree = benchmark(lambda: compute_tree_scalar(dr, secure_state, secure_state))
    assert (tree.choice >= -1).all()


def test_kernel_subtree_weights(benchmark, env, secure_state):
    dr = env.cache.dest_routing(0)
    tree = compute_tree(dr, secure_state, secure_state)
    w = benchmark(lambda: subtree_weights(dr, tree, env.graph.weights))
    assert w.sum() > 0


def test_kernel_batched_trees_all_dests(benchmark, env, secure_state):
    """Whole-destination-set resolution in one stacked kernel pass."""
    arena = env.cache.ensure_arena()
    slots = arena.all_slots()
    bt = benchmark(
        lambda: compute_trees_batched(arena, slots, secure_state, secure_state)
    )
    assert bt.choice.shape == (arena.num_dests, env.graph.n)


def test_kernel_per_dest_trees_all_dests(benchmark, env, secure_state):
    """The pre-arena baseline: one compute_tree call per destination."""
    arena = env.cache.ensure_arena()
    views = arena.views()

    def run():
        return [compute_tree(dr, secure_state, secure_state) for dr in views]

    trees = benchmark(run)
    assert len(trees) == arena.num_dests


def test_kernel_batched_subtree_weights(benchmark, env, secure_state):
    arena = env.cache.ensure_arena()
    slots = arena.all_slots()
    bt = compute_trees_batched(arena, slots, secure_state, secure_state)
    w2d = benchmark(
        lambda: subtree_weights_batched(arena, slots, bt.choice, env.graph.weights)
    )
    assert w2d.shape == (arena.num_dests, env.graph.n)
