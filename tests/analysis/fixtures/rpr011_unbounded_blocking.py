"""Golden fixture for RPR011 (blocking call without a timeout)."""


def bad_join(worker) -> None:
    worker.join()  # expect: RPR011


def bad_recv(conn):
    return conn.recv()  # expect: RPR011


def bad_get(queue):
    return queue.get()  # expect: RPR011


def bad_wait(event) -> None:
    event.wait()  # expect: RPR011


def waived_recv(conn):
    return conn.recv()  # repro-lint: disable=RPR011 -- fixture waiver


def clean_join_with_timeout(worker) -> None:
    worker.join(timeout=5.0)


def clean_get_with_timeout(queue):
    return queue.get(timeout=0.5)


def clean_wait_with_timeout(event) -> bool:
    return event.wait(timeout=1.0)


def clean_str_join(parts: list[str]) -> str:
    return ", ".join(parts)


def clean_dict_get(mapping: dict) -> object:
    return mapping.get("key")


def clean_positional_join(worker) -> None:
    # a positional argument is a timeout for join()/get()/wait()
    worker.join(5.0)
